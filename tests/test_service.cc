/**
 * @file
 * Campaign-service integration tests, driving the real morrigan-serve
 * and morrigan-submit binaries (paths injected by CMake): protocol
 * smoke, idempotent resubmission, crash-safe restart after SIGKILL of
 * the daemon and of a sandboxed worker (both bit-identical to an
 * uninterrupted run), graceful SIGTERM drain, and BUSY admission
 * backpressure.
 */

#include <gtest/gtest.h>

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json_reader.hh"

using namespace morrigan;

namespace
{

std::string
readFile(const std::string &path)
{
    std::ifstream f(path);
    std::stringstream ss;
    ss << f.rdbuf();
    return ss.str();
}

std::size_t
lineCount(const std::string &path)
{
    std::ifstream f(path);
    std::size_t n = 0;
    std::string line;
    while (std::getline(f, line))
        ++n;
    return n;
}

void
msleep(unsigned ms)
{
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/** Fork/exec a binary; returns the child pid (argv NULL-terminated
 * internally), with stderr appended to @p log. */
pid_t
spawn(const std::vector<std::string> &argv, const std::string &log)
{
    pid_t pid = ::fork();
    if (pid != 0)
        return pid;
    int fd = ::open(log.c_str(),
                    O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (fd >= 0) {
        ::dup2(fd, 2);
        ::close(fd);
    }
    std::vector<char *> cargv;
    for (const std::string &a : argv)
        cargv.push_back(const_cast<char *>(a.c_str()));
    cargv.push_back(nullptr);
    ::execv(cargv[0], cargv.data());
    _exit(127);
}

int
waitExit(pid_t pid)
{
    int status = 0;
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }
    return status;
}

/** Direct pids of @p pid (the daemon's sandboxed workers). The
 * fork happens on the daemon's campaign thread, so scan every tid's
 * children file, not just the main thread's. */
std::vector<pid_t>
childrenOf(pid_t pid)
{
    std::vector<pid_t> kids;
    std::ostringstream cmd;
    cmd << "cat /proc/" << pid << "/task/*/children 2>/dev/null";
    FILE *p = ::popen(cmd.str().c_str(), "r");
    if (!p)
        return kids;
    pid_t k;
    while (std::fscanf(p, "%d", &k) == 1)
        kids.push_back(k);
    ::pclose(p);
    return kids;
}

/** One running morrigan-serve instance on a private temp dir. */
class Daemon
{
  public:
    explicit Daemon(const std::string &stem,
                    std::vector<std::string> extra = {})
        : dir_(testing::TempDir() + stem)
    {
        // A stale journal from a previous run would replay jobs
        // instantly and break every timing assumption.
        ::system(("rm -rf '" + dir_ + "' && mkdir -p '" + dir_ +
                  "/ckpt'")
                     .c_str());
        start(std::move(extra));
    }

    ~Daemon()
    {
        if (pid_ > 0) {
            ::kill(pid_, SIGKILL);
            waitExit(pid_);
        }
    }

    void
    start(std::vector<std::string> extra = {})
    {
        std::vector<std::string> argv = {
            MORRIGAN_SERVE_BIN,       "--socket", socket(),
            "--journal",              journal(),  "--checkpoint-dir",
            dir_ + "/ckpt",           "--isolate"};
        for (std::string &e : extra)
            argv.push_back(std::move(e));
        pid_ = spawn(argv, dir_ + "/serve.log");
        ASSERT_GT(pid_, 0);
        waitListening();
    }

    /** SIGKILL; the Supervisor's workers may briefly outlive us. */
    void
    killHard()
    {
        ::kill(pid_, SIGKILL);
        waitExit(pid_);
        pid_ = -1;
    }

    /** SIGTERM and reap; returns the wait() status. */
    int
    drainAndWait()
    {
        ::kill(pid_, SIGTERM);
        int status = waitExit(pid_);
        pid_ = -1;
        return status;
    }

    pid_t pid() const { return pid_; }
    const std::string &dir() const { return dir_; }
    std::string socket() const { return dir_ + "/m.sock"; }
    std::string journal() const { return dir_ + "/j.jsonl"; }

  private:
    void
    waitListening()
    {
        for (int i = 0; i < 200; ++i) {
            int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
            ASSERT_GE(fd, 0);
            sockaddr_un addr{};
            addr.sun_family = AF_UNIX;
            std::snprintf(addr.sun_path, sizeof(addr.sun_path),
                          "%s", socket().c_str());
            int rc = ::connect(
                fd, reinterpret_cast<sockaddr *>(&addr),
                sizeof(addr));
            ::close(fd);
            if (rc == 0)
                return;
            msleep(25);
        }
        FAIL() << "daemon never started listening on " << socket();
    }

    std::string dir_;
    pid_t pid_ = -1;
};

/** Minimal blocking line-oriented protocol client. */
class RawClient
{
  public:
    explicit RawClient(const std::string &socket_path)
    {
        fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s",
                      socket_path.c_str());
        if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) != 0) {
            ::close(fd_);
            fd_ = -1;
        }
    }

    ~RawClient()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    bool connected() const { return fd_ >= 0; }

    void
    send(const std::string &line)
    {
        std::string framed = line + "\n";
        ASSERT_EQ(::write(fd_, framed.data(), framed.size()),
                  static_cast<ssize_t>(framed.size()));
    }

    /** Next protocol line, or empty on timeout/EOF. */
    std::string
    readLine(int timeout_ms = 10'000)
    {
        auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
        for (;;) {
            std::size_t nl = buf_.find('\n');
            if (nl != std::string::npos) {
                std::string line = buf_.substr(0, nl);
                buf_.erase(0, nl + 1);
                return line;
            }
            auto left =
                std::chrono::duration_cast<
                    std::chrono::milliseconds>(
                    deadline - std::chrono::steady_clock::now())
                    .count();
            if (left <= 0)
                return "";
            pollfd p{fd_, POLLIN, 0};
            if (::poll(&p, 1, static_cast<int>(left)) <= 0)
                return "";
            char tmp[4096];
            ssize_t n = ::read(fd_, tmp, sizeof(tmp));
            if (n <= 0)
                return "";
            buf_.append(tmp, static_cast<std::size_t>(n));
        }
    }

    /** Read lines until one has "event": @p event (or timeout). */
    json::Value
    readUntil(const std::string &event, int timeout_ms = 60'000)
    {
        auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
        while (std::chrono::steady_clock::now() < deadline) {
            std::string line = readLine(2'000);
            if (line.empty())
                continue;
            json::Value doc;
            if (!json::Reader(line).parse(doc))
                continue;
            std::string ev;
            if (json::getString(doc, "event", ev) && ev == event)
                return doc;
        }
        return json::Value{};
    }

  private:
    int fd_ = -1;
    std::string buf_;
};

/** A jobs file of @p n qmm jobs sized to take a noticeable time. */
std::string
writeBatch(const std::string &path, unsigned n,
           std::uint64_t instructions, bool with_interval = false)
{
    std::ofstream f(path);
    for (unsigned i = 0; i < n; ++i) {
        f << "{\"workload\":\"qmm_0" << (i % 8)
          << "\",\"prefetcher\":"
          << (i % 2 ? "\"morrigan\"" : "\"none\"")
          << ",\"warmup\":20000,\"instructions\":" << instructions;
        if (with_interval && i == 0)
            f << ",\"interval\":" << instructions / 2;
        f << "}\n";
    }
    return path;
}

std::vector<std::string>
submitArgv(const Daemon &d, const std::string &jobs,
           const std::string &out)
{
    return {MORRIGAN_SUBMIT_BIN, "--socket",      d.socket(),
            "--jobs-file",       jobs,            "--out",
            out,                 "--retry-ms",    "200",
            "--max-retries",     "300"};
}

} // namespace

TEST(Service, PingAndStatusSpeakProtocolV1)
{
    Daemon d("svc-ping");
    RawClient c(d.socket());
    ASSERT_TRUE(c.connected());

    c.send("{\"cmd\":\"ping\"}");
    json::Value pong = c.readUntil("pong", 5'000);
    std::uint64_t proto = 0;
    EXPECT_TRUE(json::getU64(pong, "protocol", proto));
    EXPECT_EQ(proto, 1u);

    c.send("{\"cmd\":\"status\"}");
    json::Value st = c.readUntil("status", 5'000);
    std::uint64_t depth = 99;
    EXPECT_TRUE(json::getU64(st, "queue_depth", depth));
    EXPECT_EQ(depth, 0u);

    c.send("not json at all");
    json::Value err = c.readUntil("error", 5'000);
    std::string msg;
    EXPECT_TRUE(json::getString(err, "message", msg));
    EXPECT_EQ(d.drainAndWait(), 0);
}

TEST(Service, ResubmissionIsIdempotentAndByteIdentical)
{
    Daemon d("svc-idem");
    const std::string jobs =
        writeBatch(d.dir() + "/batch.jsonl", 2, 60'000,
                   /*with_interval=*/true);

    const std::string out1 = d.dir() + "/r1.jsonl";
    const std::string out2 = d.dir() + "/r2.jsonl";
    const std::string iv1 = d.dir() + "/iv1.jsonl";
    const std::string iv2 = d.dir() + "/iv2.jsonl";

    auto argv1 = submitArgv(d, jobs, out1);
    argv1.push_back("--interval-out");
    argv1.push_back(iv1);
    int rc1 = waitExit(spawn(argv1, d.dir() + "/client1.log"));
    ASSERT_TRUE(WIFEXITED(rc1) && WEXITSTATUS(rc1) == 0)
        << readFile(d.dir() + "/client1.log");

    auto argv2 = submitArgv(d, jobs, out2);
    argv2.push_back("--interval-out");
    argv2.push_back(iv2);
    int rc2 = waitExit(spawn(argv2, d.dir() + "/client2.log"));
    ASSERT_TRUE(WIFEXITED(rc2) && WEXITSTATUS(rc2) == 0)
        << readFile(d.dir() + "/client2.log");

    const std::string r1 = readFile(out1);
    ASSERT_FALSE(r1.empty());
    EXPECT_EQ(r1, readFile(out2))
        << "resubmission was not byte-identical";
    EXPECT_EQ(lineCount(out1), 2u);

    // Interval epochs stream on the executing run; the journal
    // replay re-serves results without re-simulating, so it has no
    // epochs to stream.
    EXPECT_GT(lineCount(iv1), 0u);
    EXPECT_EQ(lineCount(iv2), 0u);

    // Idempotency really came from the journal, not re-execution.
    EXPECT_EQ(lineCount(d.journal()), 2u);
    EXPECT_EQ(d.drainAndWait(), 0);
}

TEST(Service, DaemonSigkillRestartResumesBitIdentical)
{
    // Reference: uninterrupted campaign on a private daemon.
    Daemon ref("svc-crash-ref");
    const std::string jobs =
        writeBatch(ref.dir() + "/batch.jsonl", 4, 12'000'000);
    const std::string ref_out = ref.dir() + "/ref.jsonl";
    int rc = waitExit(spawn(submitArgv(ref, jobs, ref_out),
                            ref.dir() + "/client.log"));
    ASSERT_TRUE(WIFEXITED(rc) && WEXITSTATUS(rc) == 0)
        << readFile(ref.dir() + "/client.log");
    ref.drainAndWait();

    // Crash campaign: SIGKILL the daemon once the journal shows the
    // campaign is genuinely mid-flight (>= 1 of 4 jobs committed),
    // restart on the same journal/checkpoint dir, and let the
    // client's retry loop resubmit.
    Daemon d("svc-crash");
    const std::string out = d.dir() + "/crash.jsonl";
    pid_t client = spawn(submitArgv(d, jobs, out),
                         d.dir() + "/client.log");

    bool killed_midflight = false;
    for (int i = 0; i < 2'000; ++i) {
        if (lineCount(d.journal()) >= 1) {
            killed_midflight = lineCount(d.journal()) < 4;
            d.killHard();
            break;
        }
        msleep(5);
    }
    ASSERT_GT(lineCount(d.journal()), 0u)
        << "campaign never started";
    EXPECT_TRUE(killed_midflight)
        << "campaign finished before the SIGKILL; grow the batch";

    d.start();
    rc = waitExit(client);
    ASSERT_TRUE(WIFEXITED(rc) && WEXITSTATUS(rc) == 0)
        << readFile(d.dir() + "/client.log");

    const std::string crash_rows = readFile(out);
    ASSERT_FALSE(crash_rows.empty());
    EXPECT_EQ(readFile(ref_out), crash_rows)
        << "restarted campaign diverged from uninterrupted run";
    EXPECT_EQ(d.drainAndWait(), 0);
}

TEST(Service, WorkerSigkillMidJobRetriesBitIdentical)
{
    Daemon ref("svc-wkill-ref");
    const std::string jobs =
        writeBatch(ref.dir() + "/batch.jsonl", 2, 12'000'000);
    const std::string ref_out = ref.dir() + "/ref.jsonl";
    int rc = waitExit(spawn(submitArgv(ref, jobs, ref_out),
                            ref.dir() + "/client.log"));
    ASSERT_TRUE(WIFEXITED(rc) && WEXITSTATUS(rc) == 0)
        << readFile(ref.dir() + "/client.log");
    ref.drainAndWait();

    // SIGKILL the first sandboxed worker the daemon forks; the
    // supervisor classifies the death, retries the job, and the
    // campaign still converges to identical bytes.
    Daemon d("svc-wkill");
    const std::string out = d.dir() + "/rows.jsonl";
    pid_t client = spawn(submitArgv(d, jobs, out),
                         d.dir() + "/client.log");

    pid_t victim = -1;
    for (int i = 0; i < 2'000 && victim < 0; ++i) {
        for (pid_t kid : childrenOf(d.pid()))
            victim = kid;
        if (victim < 0)
            msleep(5);
    }
    ASSERT_GT(victim, 0) << "no sandboxed worker ever appeared";
    ASSERT_EQ(::kill(victim, SIGKILL), 0);

    rc = waitExit(client);
    ASSERT_TRUE(WIFEXITED(rc) && WEXITSTATUS(rc) == 0)
        << readFile(d.dir() + "/client.log");
    EXPECT_EQ(readFile(ref_out), readFile(out))
        << "worker SIGKILL retry diverged";
    EXPECT_EQ(d.drainAndWait(), 0);
}

TEST(Service, SigtermDrainIsGracefulAndRetriable)
{
    // Reference bytes from an uninterrupted campaign.
    Daemon ref("svc-drain-ref");
    const std::string jobs =
        writeBatch(ref.dir() + "/batch.jsonl", 3, 2'000'000);
    const std::string ref_out = ref.dir() + "/ref.jsonl";
    int rc = waitExit(spawn(submitArgv(ref, jobs, ref_out),
                            ref.dir() + "/client.log"));
    ASSERT_TRUE(WIFEXITED(rc) && WEXITSTATUS(rc) == 0)
        << readFile(ref.dir() + "/client.log");
    ref.drainAndWait();

    Daemon d("svc-drain");
    const std::string out = d.dir() + "/rows.jsonl";
    pid_t client = spawn(submitArgv(d, jobs, out),
                         d.dir() + "/client.log");

    // Wait until the campaign is genuinely in flight, then request
    // the drain.
    for (int i = 0; i < 2'000 && lineCount(d.journal()) < 1; ++i)
        msleep(5);
    ASSERT_GE(lineCount(d.journal()), 1u);
    ASSERT_EQ(::kill(d.pid(), SIGTERM), 0);

    // A submission arriving during the drain gets a retriable busy,
    // not a hang and not a dropped connection.
    RawClient late(d.socket());
    if (late.connected()) {
        late.send("{\"cmd\":\"submit\",\"id\":\"late\",\"jobs\":"
                  "[{\"workload\":\"qmm_00\",\"warmup\":20000,"
                  "\"instructions\":60000}]}");
        json::Value busy = late.readUntil("busy", 10'000);
        if (!busy.object.empty()) {
            bool retriable = false, draining = false;
            EXPECT_TRUE(
                json::getBool(busy, "retriable", retriable));
            EXPECT_TRUE(retriable);
            EXPECT_TRUE(json::getBool(busy, "draining", draining));
            EXPECT_TRUE(draining);
        }
    }
    // (If the daemon already closed its socket the late client
    // simply fails to connect -- also a clean rejection.)

    // Graceful exit: the in-flight job finished and was journaled,
    // the not-yet-started jobs were canceled (not run, not lost),
    // and the exit status is 0.
    int status = waitExit(d.pid());
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
    const std::size_t flushed = lineCount(d.journal());
    EXPECT_GE(flushed, 1u) << "drain lost the finished jobs";

    // The cancellation is retriable: restart, and the client's own
    // resubmission completes the batch -- journaled jobs replay,
    // only the canceled tail executes, and the result bytes match
    // the uninterrupted run.
    d.start();
    rc = waitExit(client);
    ASSERT_TRUE(WIFEXITED(rc) && WEXITSTATUS(rc) == 0)
        << readFile(d.dir() + "/client.log");
    EXPECT_EQ(readFile(ref_out), readFile(out))
        << "drain + resume diverged from uninterrupted run";
    EXPECT_EQ(lineCount(d.journal()), 3u);
    EXPECT_EQ(d.drainAndWait(), 0);
}

TEST(Service, BusyBackpressureWhenQueueIsFull)
{
    Daemon d("svc-busy", {"--max-queue", "1"});
    RawClient c(d.socket());
    ASSERT_TRUE(c.connected());

    const char *campaign =
        "{\"cmd\":\"submit\",\"id\":\"c%d\",\"jobs\":"
        "[{\"workload\":\"qmm_0%d\",\"warmup\":20000,"
        "\"instructions\":30000000}]}";
    char line[256];

    // c1 must be genuinely running (not queued) before c2/c3 are
    // sent, so sequence on the status counters rather than sleeping.
    std::snprintf(line, sizeof(line), campaign, 1, 1);
    c.send(line);
    ASSERT_FALSE(c.readUntil("accepted", 5'000).object.empty());
    bool running = false;
    std::uint64_t depth = 99;
    for (int i = 0; i < 400 && !(running && depth == 0); ++i) {
        msleep(10);
        c.send("{\"cmd\":\"status\"}");
        json::Value st = c.readUntil("status", 5'000);
        json::getBool(st, "campaign_running", running);
        json::getU64(st, "queue_depth", depth);
    }
    ASSERT_TRUE(running && depth == 0)
        << "c1 never reached the worker";

    // c2 occupies the single queue slot; c3 must bounce.
    std::snprintf(line, sizeof(line), campaign, 2, 2);
    c.send(line);
    ASSERT_FALSE(c.readUntil("accepted", 5'000).object.empty());
    std::snprintf(line, sizeof(line), campaign, 3, 3);
    c.send(line);
    json::Value busy = c.readUntil("busy", 5'000);
    ASSERT_FALSE(busy.object.empty()) << "no busy event arrived";
    bool retriable = false;
    EXPECT_TRUE(json::getBool(busy, "retriable", retriable));
    EXPECT_TRUE(retriable);
    depth = 0;
    EXPECT_TRUE(json::getU64(busy, "queue_depth", depth));
    EXPECT_EQ(depth, 1u);

    // The rejection is visible in the service counters.
    c.send("{\"cmd\":\"status\"}");
    json::Value st = c.readUntil("status", 5'000);
    std::uint64_t rejections = 0;
    EXPECT_TRUE(json::getU64(st, "busy_rejections", rejections));
    EXPECT_GE(rejections, 1u);

    // Drain rather than wait out the long campaigns: the in-flight
    // job settles, the queued campaign cancels, exit stays 0.
    EXPECT_EQ(d.drainAndWait(), 0);
}

/** @file Unit tests for the prior dSTLB prefetchers (SP/ASP/DP/MP). */

#include <gtest/gtest.h>

#include "core/baseline_prefetchers.hh"

using namespace morrigan;

namespace
{

std::vector<PrefetchRequest>
miss(TlbPrefetcher &p, Vpn vpn, Addr pc = 0, unsigned tid = 0)
{
    std::vector<PrefetchRequest> out;
    p.onInstrStlbMiss(vpn, pc, tid, out);
    return out;
}

} // namespace

TEST(Sequential, PrefetchesNextPage)
{
    SequentialPrefetcher sp;
    auto out = miss(sp, 0x100);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].vpn, 0x101u);
    EXPECT_FALSE(out[0].spatial);
}

TEST(Stride, RequiresConfirmedStride)
{
    StridePrefetcher asp(128, 8);
    Addr pc = 0x4000;
    EXPECT_TRUE(miss(asp, 100, pc).empty());  // allocate
    EXPECT_TRUE(miss(asp, 110, pc).empty());  // learn stride 10
    auto out = miss(asp, 120, pc);            // confirm
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].vpn, 130u);
}

TEST(Stride, BrokenStrideStopsPrefetching)
{
    StridePrefetcher asp(128, 8);
    Addr pc = 0x4000;
    miss(asp, 100, pc);
    miss(asp, 110, pc);
    miss(asp, 120, pc);
    EXPECT_TRUE(miss(asp, 500, pc).empty());  // stride broke
}

TEST(Stride, NegativeStrideWorks)
{
    StridePrefetcher asp(128, 8);
    Addr pc = 0x8;
    miss(asp, 100, pc);
    miss(asp, 90, pc);
    auto out = miss(asp, 80, pc);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].vpn, 70u);
}

TEST(Stride, DistinctPcsTrackedSeparately)
{
    StridePrefetcher asp(128, 8);
    miss(asp, 100, 0x10);
    miss(asp, 200, 0x20);
    miss(asp, 110, 0x10);
    auto out = miss(asp, 120, 0x10);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].vpn, 130u);
}

TEST(Distance, LearnsDistanceChains)
{
    DistancePrefetcher dp(128, 8);
    // Misses 10, 20, 30: distances 10 -> 10. After training, a miss
    // at distance 10 predicts the next distance 10.
    miss(dp, 10);
    miss(dp, 20);
    miss(dp, 30);
    auto out = miss(dp, 40);
    ASSERT_GE(out.size(), 1u);
    EXPECT_EQ(out[0].vpn, 50u);
}

TEST(Distance, AlternatingPattern)
{
    DistancePrefetcher dp(128, 8);
    // Pattern +5, +3, +5, +3: after distance 5 comes 3 and after 3
    // comes 5.
    Vpn v = 100;
    miss(dp, v);
    v += 5; miss(dp, v);
    v += 3; miss(dp, v);
    v += 5; miss(dp, v);
    v += 3;
    auto out = miss(dp, v);  // current distance 3 -> predict +5
    bool found = false;
    for (const auto &r : out)
        found |= r.vpn == v + 5;
    EXPECT_TRUE(found);
}

TEST(Markov, RemembersSuccessors)
{
    MarkovPrefetcher mp(128, 8, 2);
    miss(mp, 1);
    miss(mp, 2);   // trains 1 -> 2
    miss(mp, 1);
    auto out = miss(mp, 1);  // 1 -> 1 trains; lookup of 1
    // After visiting 1 again, its successor list contains 2 (and 1).
    bool found = false;
    for (const auto &r : out)
        found |= r.vpn == 2;
    EXPECT_TRUE(found);
}

TEST(Markov, SlotLimitKeepsMostRecent)
{
    MarkovPrefetcher mp(128, 8, 2);
    // Successors of page 1: 2, then 3, then 4 => slots keep {4, 3}.
    miss(mp, 1); miss(mp, 2);
    miss(mp, 1); miss(mp, 3);
    miss(mp, 1); miss(mp, 4);
    auto out = miss(mp, 1);
    std::vector<Vpn> preds;
    for (const auto &r : out)
        preds.push_back(r.vpn);
    EXPECT_EQ(preds.size(), 2u);
    EXPECT_NE(std::find(preds.begin(), preds.end(), 4), preds.end());
    EXPECT_NE(std::find(preds.begin(), preds.end(), 3), preds.end());
    EXPECT_EQ(std::find(preds.begin(), preds.end(), 2), preds.end());
}

TEST(Markov, UnboundedKeepsEverySuccessor)
{
    MarkovPrefetcher mp(0, 0, 0);
    EXPECT_TRUE(mp.unbounded());
    for (Vpn succ = 2; succ < 12; ++succ) {
        miss(mp, 1);
        miss(mp, succ);
    }
    auto out = miss(mp, 1);
    // 10 distinct successors plus possibly page 1 itself from
    // succ -> 1 transitions.
    EXPECT_GE(out.size(), 10u);
}

TEST(Markov, BoundedTableEvicts)
{
    MarkovPrefetcher mp(8, 8, 2);
    for (Vpn v = 0; v < 64; v += 2) {
        miss(mp, v);
        miss(mp, v + 1);
    }
    // Early pages have been evicted from the 8-entry table.
    auto out = miss(mp, 0);
    (void)out;
    SUCCEED();  // behavioural: no crash, bounded memory
}

TEST(Markov, ContextSwitchClears)
{
    MarkovPrefetcher mp(128, 8, 2);
    miss(mp, 1);
    miss(mp, 2);
    mp.onContextSwitch();
    auto out = miss(mp, 1);
    EXPECT_TRUE(out.empty());
}

TEST(Baselines, StorageBitsSane)
{
    StridePrefetcher asp(128, 8);
    DistancePrefetcher dp(128, 8);
    MarkovPrefetcher mp(128, 8, 2);
    MarkovPrefetcher unbounded(0, 0, 0);
    EXPECT_GT(asp.storageBits(), 0u);
    EXPECT_GT(dp.storageBits(), 0u);
    EXPECT_GT(mp.storageBits(), 0u);
    EXPECT_EQ(unbounded.storageBits(), 0u);
    EXPECT_EQ(SequentialPrefetcher{}.storageBits(), 0u);
}

TEST(Baselines, SmtThreadsKeepSeparateHistory)
{
    MarkovPrefetcher mp(128, 8, 2);
    miss(mp, 1, 0, 0);
    miss(mp, 100, 0, 1);  // thread 1 must not train 1 -> 100
    miss(mp, 2, 0, 0);    // thread 0 trains 1 -> 2
    miss(mp, 1, 0, 0);
    auto out = miss(mp, 1, 0, 0);
    for (const auto &r : out)
        EXPECT_NE(r.vpn, 100u);
}

/** @file Unit tests for the experiment-runner helpers. */

#include <gtest/gtest.h>

#include <cstdlib>

#include "core/prefetcher_registry.hh"
#include "sim/experiment.hh"

using namespace morrigan;

TEST(Experiment, SpeedupPctMath)
{
    SimResult base, opt;
    base.ipc = 1.0;
    opt.ipc = 1.076;
    EXPECT_NEAR(speedupPct(base, opt), 7.6, 1e-9);
    opt.ipc = 0.9;
    EXPECT_NEAR(speedupPct(base, opt), -10.0, 1e-9);
}

TEST(Experiment, GeomeanSpeedup)
{
    std::vector<SimResult> base(2), opt(2);
    base[0].ipc = 1.0;
    base[1].ipc = 2.0;
    opt[0].ipc = 1.1;
    opt[1].ipc = 2.2;
    EXPECT_NEAR(geomeanSpeedupPct(base, opt), 10.0, 1e-6);
}

TEST(Experiment, BenchScaleQuickDefaults)
{
    unsetenv("MORRIGAN_FULL");
    BenchScale s = benchScale(45);
    EXPECT_FALSE(s.full);
    EXPECT_LE(s.numWorkloads, 45u);
    EXPECT_GT(s.simInstructions, 0u);
}

TEST(Experiment, BenchScaleFullMode)
{
    setenv("MORRIGAN_FULL", "1", 1);
    BenchScale s = benchScale(45);
    EXPECT_TRUE(s.full);
    EXPECT_EQ(s.numWorkloads, 45u);
    unsetenv("MORRIGAN_FULL");
}

TEST(Factory, RoundTripNames)
{
    for (const char *name :
         {"none", "sp", "asp", "dp", "mp", "mp-iso", "mp-unbounded2",
          "mp-unbounded", "morrigan", "morrigan-mono", "fnl-mma",
          "mana", "fdip"}) {
        std::string spec(name);
        EXPECT_EQ(checkPrefetcherSpec(spec), "");
        auto p = makePrefetcher(spec);
        if (spec == "none")
            EXPECT_EQ(p, nullptr);
        else
            EXPECT_NE(p, nullptr);
    }
}

TEST(Factory, MorriganHasPaperBudget)
{
    auto p = makePrefetcher("morrigan");
    double kb = p->storageBits() / 8.0 / 1024.0;
    EXPECT_NEAR(kb, 3.8, 0.3);
}

TEST(Factory, IsoMarkovMatchesMorriganBudget)
{
    auto morrigan = makePrefetcher("morrigan");
    auto mp_iso = makePrefetcher("mp-iso");
    double ratio = static_cast<double>(mp_iso->storageBits()) /
                   static_cast<double>(morrigan->storageBits());
    EXPECT_NEAR(ratio, 1.0, 0.15);
}

TEST(FactoryDeathTest, UnknownNameIsFatal)
{
    // The error must enumerate the registered plugins (satellite of
    // the registry refactor: no more terse unknown-name failures).
    EXPECT_EXIT(makePrefetcher("bogus"),
                ::testing::ExitedWithCode(1),
                "unknown prefetcher 'bogus'.*registered:.*morrigan");
}

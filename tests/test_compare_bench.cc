/**
 * @file
 * Exit-code contract of tools/compare_bench_json.py: 0 on a clean
 * match, 1 on a measured regression, 2 on an unusable input -- a
 * missing file, or a *degraded* candidate (failure manifest present
 * or NaN/null measured rows from a campaign that lost jobs). The
 * degraded path must exit 2 without a traceback: CI tells "the
 * figure moved" apart from "the campaign died" by this code alone.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdlib>
#include <fstream>
#include <string>

namespace
{

std::string
writeArtifact(const char *stem, const std::string &rows_json,
              const std::string &manifest_json = "")
{
    const std::string path = testing::TempDir() + stem;
    std::ofstream f(path);
    f << "{\"schema\":\"morrigan-bench\",";
    if (!manifest_json.empty())
        f << "\"failures\":" << manifest_json << ",";
    f << "\"sections\":[{\"figure\":\"fig-test\",\"rows\":["
      << rows_json << "]}]}";
    return path;
}

std::string
row(const char *label, const char *measured)
{
    return std::string("{\"label\":\"") + label +
           "\",\"measured\":" + measured + ",\"unit\":\"pct\"}";
}

/** Script exit code, or -1 when it did not exit normally. */
int
runCompare(const std::string &candidate, const std::string &golden)
{
    const std::string cmd = "python3 " MORRIGAN_COMPARE_BENCH " '" +
                            candidate + "' '" + golden +
                            "' > /dev/null 2>&1";
    int status = std::system(cmd.c_str());
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

bool
havePython()
{
    return std::system("python3 -c '' > /dev/null 2>&1") == 0;
}

} // namespace

TEST(CompareBench, CleanMatchExitsZero)
{
    if (!havePython())
        GTEST_SKIP() << "python3 unavailable";
    const std::string golden = writeArtifact(
        "cb-golden.json", row("a", "1.5") + "," + row("b", "2.5"));
    const std::string cand = writeArtifact(
        "cb-clean.json", row("a", "1.5") + "," + row("b", "2.5"));
    EXPECT_EQ(runCompare(cand, golden), 0);
}

TEST(CompareBench, MeasuredRegressionExitsOne)
{
    if (!havePython())
        GTEST_SKIP() << "python3 unavailable";
    const std::string golden =
        writeArtifact("cb-golden1.json", row("a", "1.5"));
    const std::string cand =
        writeArtifact("cb-moved.json", row("a", "9.5"));
    EXPECT_EQ(runCompare(cand, golden), 1);
}

TEST(CompareBench, MissingFileExitsTwo)
{
    if (!havePython())
        GTEST_SKIP() << "python3 unavailable";
    const std::string golden =
        writeArtifact("cb-golden2.json", row("a", "1.5"));
    EXPECT_EQ(
        runCompare(testing::TempDir() + "cb-does-not-exist.json",
                   golden),
        2);
}

TEST(CompareBench, NanRowsExitTwoNotCrash)
{
    if (!havePython())
        GTEST_SKIP() << "python3 unavailable";
    // A degraded campaign serializes NaN speedups as null
    // (json::Writer); the comparator must classify, not traceback.
    const std::string golden = writeArtifact(
        "cb-golden3.json", row("a", "1.5") + "," + row("b", "2.5"));
    const std::string cand = writeArtifact(
        "cb-nan.json", row("a", "null") + "," + row("b", "2.5"));
    EXPECT_EQ(runCompare(cand, golden), 2);
}

TEST(CompareBench, FailureManifestExitsTwoEvenWhenRowsMatch)
{
    if (!havePython())
        GTEST_SKIP() << "python3 unavailable";
    const std::string golden =
        writeArtifact("cb-golden4.json", row("a", "1.5"));
    const std::string cand = writeArtifact(
        "cb-manifest.json", row("a", "1.5"),
        "[{\"label\":\"qmm_03/morrigan\",\"status\":\"Crashed\","
        "\"attempts\":2,\"what\":\"signal 9\"}]");
    EXPECT_EQ(runCompare(cand, golden), 2);
}

/** @file Unit tests for the statistics package. */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/stats.hh"

using namespace morrigan;

TEST(Stats, CounterBasics)
{
    StatGroup g("root");
    Counter c(&g, "events", "test events");
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 41;
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, HistogramBucketing)
{
    StatGroup g("root");
    Histogram h(&g, "lat", "latency", {10, 100, 1000});
    h.sample(5);        // bucket 0 (<=10)
    h.sample(10);       // bucket 0
    h.sample(11);       // bucket 1
    h.sample(1000);     // bucket 2
    h.sample(5000);     // overflow bucket 3
    EXPECT_EQ(h.numBuckets(), 4u);
    EXPECT_EQ(h.bucketCount(0), 2u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 1u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.totalSamples(), 5u);
}

TEST(Stats, HistogramWeightedSamples)
{
    StatGroup g("root");
    Histogram h(&g, "w", "weighted", {1});
    h.sample(0, 7);
    h.sample(2, 3);
    EXPECT_EQ(h.bucketCount(0), 7u);
    EXPECT_EQ(h.bucketCount(1), 3u);
    EXPECT_EQ(h.totalSamples(), 10u);
}

TEST(Stats, DistributionMoments)
{
    StatGroup g("root");
    Distribution d(&g, "d", "dist");
    EXPECT_EQ(d.mean(), 0.0);
    d.sample(2.0);
    d.sample(4.0);
    d.sample(9.0);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_NEAR(d.mean(), 5.0, 1e-12);
    EXPECT_EQ(d.min(), 2.0);
    EXPECT_EQ(d.max(), 9.0);
}

TEST(Stats, DistributionFirstSampleSetsMinAndMax)
{
    StatGroup g("root");
    Distribution d(&g, "d", "dist");
    // Before any sample both extremes report 0.
    EXPECT_EQ(d.min(), 0.0);
    EXPECT_EQ(d.max(), 0.0);
    // The first sample must become both min and max even when it is
    // larger than 0 (min) or negative (max) -- i.e. the extremes must
    // be seeded from the sample, not compared against stale zeros.
    d.sample(7.0);
    EXPECT_EQ(d.min(), 7.0);
    EXPECT_EQ(d.max(), 7.0);

    Distribution neg(&g, "n", "negative first sample");
    neg.sample(-3.0);
    EXPECT_EQ(neg.min(), -3.0);
    EXPECT_EQ(neg.max(), -3.0);

    // Reset re-arms the first-sample seeding.
    d.reset();
    d.sample(-1.0);
    EXPECT_EQ(d.min(), -1.0);
    EXPECT_EQ(d.max(), -1.0);
}

TEST(Stats, GroupHierarchyPaths)
{
    StatGroup root("sim");
    StatGroup child("tlb", &root);
    EXPECT_EQ(child.path(), "sim.tlb");
}

TEST(Stats, DumpContainsEntries)
{
    StatGroup root("sim");
    Counter c(&root, "hits", "hit count");
    c += 3;
    std::ostringstream os;
    root.dump(os);
    EXPECT_NE(os.str().find("sim.hits 3"), std::string::npos);
}

TEST(Stats, ResetAllRecurses)
{
    StatGroup root("sim");
    StatGroup child("sub", &root);
    Counter a(&root, "a", "");
    Counter b(&child, "b", "");
    a += 5;
    b += 7;
    root.resetAll();
    EXPECT_EQ(a.value(), 0u);
    EXPECT_EQ(b.value(), 0u);
}

TEST(Stats, GeomeanKnownValues)
{
    EXPECT_NEAR(geomean({1.0, 1.0, 1.0}), 1.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 8.0}), 4.0, 1e-12);
    EXPECT_NEAR(geomean({1.1}), 1.1, 1e-12);
}

TEST(Stats, GeomeanOrderInvariant)
{
    double a = geomean({1.5, 0.5, 2.0, 3.0});
    double b = geomean({3.0, 2.0, 0.5, 1.5});
    EXPECT_NEAR(a, b, 1e-12);
}

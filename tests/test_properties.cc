/**
 * @file
 * Property-based tests: randomized operation sequences checked
 * against global invariants of the core structures.
 */

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "common/rng.hh"
#include "core/irip.hh"
#include "core/morrigan.hh"
#include "tlb/prefetch_buffer.hh"
#include "vm/page_table.hh"

using namespace morrigan;

/** Random miss streams never violate IRIP's structural invariants. */
class IripProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(IripProperty, InvariantsHoldUnderRandomStreams)
{
    Rng rng(GetParam());
    Irip irip{IripParams{}};
    std::vector<PrefetchRequest> out;
    std::unordered_set<Vpn> touched;

    for (int i = 0; i < 20000; ++i) {
        Vpn vpn = 0x4000 + rng.below(512);
        touched.insert(vpn);
        out.clear();
        irip.onInstrStlbMiss(vpn, 0, rng.below(2), out);

        // Invariant 1: spatial flag set on at most one request
        // unless the ablation is on.
        unsigned spatial = 0;
        for (const auto &r : out)
            spatial += r.spatial;
        ASSERT_LE(spatial, 1u);

        // Invariant 2: every prediction carries a representable
        // distance and correct source page.
        for (const auto &r : out) {
            ASSERT_EQ(r.tag.sourcePage, vpn);
            ASSERT_LE(std::abs(r.tag.distance),
                      PredictionTable::maxDistance);
            ASSERT_EQ(static_cast<PageDelta>(r.vpn),
                      static_cast<PageDelta>(vpn) + r.tag.distance);
        }
    }

    // Invariant 3: no page resides in two prediction tables.
    for (Vpn v : touched)
        ASSERT_FALSE(irip.entryResidesInMultipleTables(v));

    // Invariant 4: population never exceeds capacity.
    for (std::size_t t = 0; t < irip.numTables(); ++t) {
        ASSERT_LE(irip.table(t).population(),
                  irip.table(t).geometry().entries);
    }

    // Invariant 5: every stored slot has a valid distance and a
    // confidence within the 2-bit range.
    for (std::size_t t = 0; t < irip.numTables(); ++t) {
        irip.table(t).forEach([](const PrtEntry &e) {
            unsigned valid = 0;
            for (const auto &s : e.slots) {
                if (!s.valid)
                    continue;
                ++valid;
                ASSERT_NE(s.distance, 0);
                ASSERT_LE(s.confidence,
                          PredictionTable::confidenceMax);
            }
            ASSERT_GT(e.slots.size(), 0u);
            ASSERT_LE(valid, e.slots.size());
        });
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IripProperty,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u,
                                           21u, 34u));

/** The PB never exceeds capacity and never loses a consumed entry. */
class PbProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(PbProperty, ModelMatchesReferenceSemantics)
{
    Rng rng(GetParam());
    PrefetchBuffer pb(16, 2);
    std::unordered_set<Vpn> resident;

    for (int i = 0; i < 5000; ++i) {
        Vpn vpn = rng.below(64);
        if (rng.chance(0.6)) {
            PbEntry e;
            e.pfn = vpn + 1000;
            bool was_resident = pb.contains(vpn);
            pb.insert(vpn, e);
            ASSERT_TRUE(pb.contains(vpn));
            if (!was_resident)
                resident.insert(vpn);
        } else {
            bool expect_hit = pb.contains(vpn);
            PbLookupResult r = pb.lookupAndConsume(vpn, i);
            ASSERT_EQ(r.hit, expect_hit);
            if (r.hit)
                ASSERT_EQ(r.entry.pfn, vpn + 1000);
            ASSERT_FALSE(pb.contains(vpn));
            resident.erase(vpn);
        }
        // Capacity invariant: at most 16 resident entries.
        unsigned live = 0;
        for (Vpn v = 0; v < 64; ++v)
            live += pb.contains(v);
        ASSERT_LE(live, 16u);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PbProperty,
                         ::testing::Values(11u, 22u, 33u, 44u));

/** Page table: translations are stable, unique and line-grouped. */
class PageTableProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(PageTableProperty, RandomMapWalkConsistency)
{
    Rng rng(GetParam());
    PhysMem phys(1 << 20, GetParam());
    PageTable pt(phys);
    std::unordered_map<Vpn, Pfn> model;

    for (int i = 0; i < 4000; ++i) {
        Vpn vpn = rng.below(1 << 16);
        if (rng.chance(0.5)) {
            WalkPath p = pt.walk(vpn, true);
            ASSERT_TRUE(p.mapped);
            auto it = model.find(vpn);
            if (it != model.end())
                ASSERT_EQ(p.pfn, it->second);  // stable translation
            else
                model[vpn] = p.pfn;
        } else {
            WalkPath p = pt.walk(vpn, false);
            ASSERT_EQ(p.mapped, model.count(vpn) == 1);
        }
    }

    // Uniqueness of data frames across all mapped pages.
    std::unordered_set<Pfn> frames;
    for (const auto &[vpn, pfn] : model)
        ASSERT_TRUE(frames.insert(pfn).second);

    // Line-neighbour closure: neighbours of any mapped page are
    // mapped pages of the same aligned 8-group.
    for (const auto &[vpn, pfn] : model) {
        unsigned count = 0;
        auto n = pt.lineNeighbors(vpn, &count);
        ASSERT_GE(count, 1u);
        for (unsigned k = 0; k < count; ++k) {
            ASSERT_EQ(n[k] & ~Vpn{7}, vpn & ~Vpn{7});
            ASSERT_TRUE(model.count(n[k]) == 1 || n[k] == vpn);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PageTableProperty,
                         ::testing::Values(3u, 7u, 9u));

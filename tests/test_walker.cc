/** @file Unit tests for the page table walker. */

#include <gtest/gtest.h>

#include "mem/memory_hierarchy.hh"
#include "vm/walker.hh"

using namespace morrigan;

namespace
{

struct Fixture
{
    PhysMem phys{1 << 20, 1};
    PageTable pt{phys};
    MemoryHierarchyParams memParams{};
    MemoryHierarchy mem{[this] {
        memParams.l2Prefetcher = false;
        return memParams;
    }()};
    WalkerParams wp{};
    PageTableWalker walker{wp, pt, mem};
};

} // namespace

TEST(Walker, DemandWalkAllocatesAndSucceeds)
{
    Fixture f;
    WalkResult r = f.walker.walk(0x100, WalkKind::Demand, 0, true);
    EXPECT_TRUE(r.success);
    EXPECT_TRUE(f.pt.isMapped(0x100));
    EXPECT_GT(r.latency, 0u);
    EXPECT_EQ(r.memRefs, pageTableLevels);  // cold PSC
}

TEST(Walker, PscCutsReferencesOnRepeatWalks)
{
    Fixture f;
    f.pt.mapRange(0x200, 16);
    f.walker.walk(0x200, WalkKind::Demand, 0, true);
    WalkResult r = f.walker.walk(0x201, WalkKind::Demand, 100, true);
    EXPECT_EQ(r.memRefs, 1u);  // PD hit: leaf only
}

TEST(Walker, PrefetchWalkToUnmappedIsDropped)
{
    Fixture f;
    WalkResult r =
        f.walker.walk(0x9999, WalkKind::Prefetch, 0, false);
    EXPECT_FALSE(r.success);
    EXPECT_FALSE(f.pt.isMapped(0x9999));
}

TEST(WalkerDeathTest, FaultingPrefetchIsABug)
{
    Fixture f;
    EXPECT_DEATH(f.walker.walk(0x1, WalkKind::Prefetch, 0, true),
                 "non-faulting");
}

TEST(Walker, PortContentionDelaysLaterWalks)
{
    Fixture f;
    f.pt.mapRange(0x300, 64);
    // Saturate all ports at cycle 0.
    Cycle busiest = 0;
    for (std::uint32_t i = 0; i <= f.wp.ports; ++i) {
        WalkResult r = f.walker.walk(0x300 + i * 8,
                                     WalkKind::Prefetch, 0, false);
        busiest = std::max(busiest, r.startCycle);
    }
    // The (ports+1)-th walk cannot start at cycle 0.
    EXPECT_GT(busiest, 0u);
}

TEST(Walker, EarliestStartTracksBusyPorts)
{
    Fixture f;
    f.pt.mapRange(0x400, 16);
    EXPECT_EQ(f.walker.earliestStart(5), 5u);
    for (std::uint32_t i = 0; i < f.wp.ports; ++i)
        f.walker.walk(0x400 + i, WalkKind::Demand, 0, true);
    EXPECT_GT(f.walker.earliestStart(0), 0u);
}

TEST(Walker, LatencyIncludesQueueing)
{
    Fixture f;
    f.pt.mapRange(0x500, 16);
    for (std::uint32_t i = 0; i < f.wp.ports; ++i)
        f.walker.walk(0x500 + i, WalkKind::Demand, 0, true);
    WalkResult r = f.walker.walk(0x50f, WalkKind::Demand, 0, true);
    EXPECT_EQ(r.completeCycle - 0, r.latency);
    EXPECT_GE(r.startCycle, 1u);
}

TEST(Walker, StatsSplitDemandAndPrefetch)
{
    Fixture f;
    f.pt.mapRange(0x600, 8);
    f.walker.walk(0x600, WalkKind::Demand, 0, true);
    f.walker.walk(0x601, WalkKind::Prefetch, 0, false);
    EXPECT_EQ(f.walker.demandWalks(), 1u);
    EXPECT_EQ(f.walker.prefetchWalks(), 1u);
    EXPECT_GT(f.walker.demandMemRefs(), 0u);
    EXPECT_GT(f.walker.prefetchMemRefs(), 0u);
}

TEST(Walker, RefsByLevelSumsToMemRefs)
{
    Fixture f;
    WalkResult r = f.walker.walk(0x700, WalkKind::Demand, 0, true);
    unsigned total = 0;
    for (unsigned lvl = 0; lvl < 4; ++lvl)
        total += r.refsByLevel[lvl];
    EXPECT_EQ(total, r.memRefs);
}

TEST(Walker, AsapCollapsesSerializedChain)
{
    // Two identical systems, one with ASAP; compare the cold-walk
    // latency: serialized sum vs slowest single reference.
    PhysMem phys_a(1 << 20, 1), phys_b(1 << 20, 1);
    PageTable pt_a(phys_a), pt_b(phys_b);
    MemoryHierarchyParams mp;
    mp.l2Prefetcher = false;
    MemoryHierarchy mem_a(mp), mem_b(mp);
    WalkerParams wa, wb;
    wb.asap = true;
    PageTableWalker walker_a(wa, pt_a, mem_a);
    PageTableWalker walker_b(wb, pt_b, mem_b);

    WalkResult ra = walker_a.walk(0x42, WalkKind::Demand, 0, true);
    WalkResult rb = walker_b.walk(0x42, WalkKind::Demand, 0, true);
    EXPECT_EQ(ra.memRefs, rb.memRefs);
    EXPECT_LT(rb.latency, ra.latency);
}

TEST(Walker, WalkLatencyReflectsCacheLocality)
{
    Fixture f;
    f.pt.mapRange(0x800, 8);
    WalkResult cold = f.walker.walk(0x800, WalkKind::Demand, 0, true);
    // Neighbouring page: PSC hit + leaf line already in L1D.
    WalkResult warm =
        f.walker.walk(0x801, WalkKind::Demand, 1000, true);
    EXPECT_LT(warm.latency, cold.latency);
}

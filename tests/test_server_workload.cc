/** @file Unit + property tests for the synthetic server workload. */

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/logging.hh"
#include "workload/server_workload.hh"
#include "workload/workload_factory.hh"

using namespace morrigan;

TEST(ServerWorkload, DeterministicForSameParams)
{
    ServerWorkloadParams p = qmmWorkloadParams(1);
    ServerWorkload a(p), b(p);
    for (int i = 0; i < 5000; ++i) {
        TraceRecord ra = a.next(), rb = b.next();
        EXPECT_EQ(ra.pc, rb.pc);
        EXPECT_EQ(ra.hasData, rb.hasData);
        EXPECT_EQ(ra.dataAddr, rb.dataAddr);
    }
}

TEST(ServerWorkload, DifferentSeedsDiffer)
{
    ServerWorkloadParams p = qmmWorkloadParams(1);
    ServerWorkload a(p);
    p.seed += 1;
    ServerWorkload b(p);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += a.next().pc == b.next().pc;
    EXPECT_LT(same, 500);
}

TEST(ServerWorkload, PcsStayInMappedCodeRegions)
{
    ServerWorkloadParams p = qmmWorkloadParams(2);
    ServerWorkload w(p);
    auto regions = w.mappedRegions();
    for (int i = 0; i < 20000; ++i) {
        Vpn vpn = pageOf(w.next().pc);
        bool in_region = false;
        for (const auto &[base, count] : regions)
            in_region |= vpn >= base && vpn < base + count;
        EXPECT_TRUE(in_region) << "pc page " << vpn << " unmapped";
    }
}

TEST(ServerWorkload, DataAccessRateMatchesParam)
{
    ServerWorkloadParams p = qmmWorkloadParams(3);
    ServerWorkload w(p);
    int with_data = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        with_data += w.next().hasData;
    EXPECT_NEAR(with_data / static_cast<double>(n),
                p.dataAccessProb, 0.02);
}

TEST(ServerWorkload, CodeAndDataRegionsDisjoint)
{
    ServerWorkloadParams p = qmmWorkloadParams(4);
    ServerWorkload w(p);
    auto regions = w.mappedRegions();
    for (std::size_t i = 0; i < regions.size(); ++i) {
        for (std::size_t j = i + 1; j < regions.size(); ++j) {
            auto [a, ca] = regions[i];
            auto [b, cb] = regions[j];
            EXPECT_TRUE(a + ca <= b || b + cb <= a)
                << "regions overlap";
        }
    }
}

TEST(ServerWorkload, SuccessorFanOutIsSmall)
{
    // Finding 3: pages have only a few likely successors.
    ServerWorkloadParams p = qmmWorkloadParams(5);
    ServerWorkload w(p);
    unsigned small = 0, total = 0;
    for (std::uint32_t i = 0; i < p.codePages; i += 7) {
        std::uint32_t k = w.successorCount(i);
        if (k == 0)
            continue;
        ++total;
        small += k <= 8;
    }
    ASSERT_GT(total, 20u);
    EXPECT_GT(small / static_cast<double>(total), 0.6);
}

TEST(ServerWorkload, TierClassificationConsistent)
{
    ServerWorkloadParams p = qmmWorkloadParams(6);
    ServerWorkload w(p);
    int hot = 0, warm = 0, cold = 0;
    for (std::uint32_t i = 0; i < p.codePages; ++i) {
        switch (w.tierOfVpn(w.pageVpn(i))) {
          case 0: ++hot; break;
          case 1: ++warm; break;
          case 2: ++cold; break;
          default: FAIL() << "code page without tier";
        }
    }
    EXPECT_EQ(hot, static_cast<int>(p.hotCodePages));
    EXPECT_EQ(warm, static_cast<int>(p.warmCodePages));
    EXPECT_EQ(hot + warm + cold, static_cast<int>(p.codePages));
    EXPECT_EQ(w.tierOfVpn(0xdeadbeef), -1);
}

TEST(ServerWorkload, PhaseChangesHappenOnSchedule)
{
    ServerWorkloadParams p = qmmWorkloadParams(7);
    p.phaseInterval = 10000;
    ServerWorkload w(p);
    for (int i = 0; i < 45000; ++i)
        w.next();
    EXPECT_GE(w.phaseChanges(), 3u);
    EXPECT_LE(w.phaseChanges(), 5u);
}

TEST(ServerWorkload, ZeroPhaseIntervalDisablesPhases)
{
    ServerWorkloadParams p = qmmWorkloadParams(8);
    p.phaseInterval = 0;
    ServerWorkload w(p);
    for (int i = 0; i < 50000; ++i)
        w.next();
    EXPECT_EQ(w.phaseChanges(), 0u);
}

TEST(ServerWorkload, VisitsConcentrateOnHotTier)
{
    ServerWorkloadParams p = qmmWorkloadParams(9);
    ServerWorkload w(p);
    std::uint64_t hot = 0, total = 0;
    Vpn last = 0;
    for (int i = 0; i < 200000; ++i) {
        Vpn vpn = pageOf(w.next().pc);
        if (vpn == last)
            continue;  // count page visits, not instructions
        last = vpn;
        ++total;
        hot += w.tierOfVpn(vpn) == 0;
    }
    EXPECT_GT(hot / static_cast<double>(total), 0.5);
}

TEST(WorkloadFactory, AllQmmPresetsConstruct)
{
    for (unsigned i = 0; i < numQmmWorkloads; ++i) {
        ServerWorkloadParams p = qmmWorkloadParams(i);
        EXPECT_EQ(p.name, csprintf("qmm_%02u", i));
        EXPECT_GE(p.codePages, 1500u);
        EXPECT_LE(p.codePages, 6000u);
        EXPECT_GT(p.hotShare + p.warmShare, 0.9);
        EXPECT_LT(p.hotShare + p.warmShare, 1.0);
        ServerWorkload w(p);
        for (int k = 0; k < 100; ++k)
            w.next();
    }
}

TEST(WorkloadFactory, SpecPresetsAreSmallFootprint)
{
    for (unsigned i = 0; i < numSpecWorkloads; ++i) {
        ServerWorkloadParams p = specWorkloadParams(i);
        EXPECT_LE(p.codePages, 100u);
        ServerWorkload w(p);
        for (int k = 0; k < 100; ++k)
            w.next();
    }
}

TEST(WorkloadFactory, JavaPresetsNamed)
{
    const auto &names = javaWorkloadNames();
    EXPECT_EQ(names.size(), 7u);
    EXPECT_EQ(names[0], "cassandra");
    for (unsigned i = 0; i < names.size(); ++i) {
        ServerWorkloadParams p = javaWorkloadParams(i);
        EXPECT_EQ(p.name, names[i]);
    }
}

TEST(WorkloadFactoryDeathTest, OutOfRangeIndexIsFatal)
{
    EXPECT_EXIT(qmmWorkloadParams(numQmmWorkloads),
                ::testing::ExitedWithCode(1), "out of range");
}

/** Every QMM preset is constructible and deterministic (sweep). */
class QmmSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(QmmSweep, DeterministicFirstThousand)
{
    ServerWorkloadParams p = qmmWorkloadParams(GetParam());
    ServerWorkload a(p), b(p);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next().pc, b.next().pc);
}

INSTANTIATE_TEST_SUITE_P(Suite, QmmSweep,
                         ::testing::Values(0u, 7u, 13u, 22u, 31u,
                                           40u, 44u));

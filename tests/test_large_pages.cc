/** @file Tests for 2MB large-page support (Section 4.3). */

#include <gtest/gtest.h>

#include "sim/experiment.hh"
#include "tlb/tlb_hierarchy.hh"
#include "vm/walker.hh"
#include "workload/workload_factory.hh"

using namespace morrigan;

TEST(LargePages, MapAndWalk)
{
    PhysMem phys(1 << 22, 1);
    PageTable pt(phys);
    Vpn base = largePageBase(0x123456);
    EXPECT_TRUE(pt.mapLargePage(0x123456));
    EXPECT_FALSE(pt.mapLargePage(base + 5));  // same 2MB page
    EXPECT_TRUE(pt.isMapped(base));
    EXPECT_TRUE(pt.isMapped(base + 511));
    EXPECT_FALSE(pt.isMapped(base + 512));

    WalkPath p = pt.walk(base + 7, false);
    EXPECT_TRUE(p.mapped);
    EXPECT_TRUE(p.large);
    // The walk terminates at the PD level: one fewer reference.
    EXPECT_EQ(p.levels, pt.levels() - 1);
}

TEST(LargePages, ContiguousFramesWithinPage)
{
    PhysMem phys(1 << 22, 1);
    PageTable pt(phys);
    Vpn base = largePageBase(0x40000);
    pt.mapLargePage(base);
    Pfn first = pt.walk(base, false).pfn;
    for (unsigned i = 1; i < 16; ++i)
        EXPECT_EQ(pt.walk(base + i, false).pfn, first + i);
}

TEST(LargePages, WalkerReportsLargeResult)
{
    PhysMem phys(1 << 22, 1);
    PageTable pt(phys);
    MemoryHierarchyParams mp;
    mp.l2Prefetcher = false;
    MemoryHierarchy mem(mp);
    PageTableWalker walker(WalkerParams{}, pt, mem);
    Vpn base = largePageBase(0x80000);
    pt.mapLargePage(base);
    WalkResult r = walker.walk(base + 3, WalkKind::Demand, 0, false);
    EXPECT_TRUE(r.success);
    EXPECT_TRUE(r.large);
    EXPECT_EQ(r.basePfn, r.pfn - 3);
    EXPECT_EQ(r.memRefs, pt.levels() - 1);  // cold walk, PD leaf
}

TEST(LargePages, TlbDualSizeLookup)
{
    Tlb tlb({"t", 64, 4, 1, 4});
    Vpn base = largePageBase(0x200000);
    tlb.fillLarge(base + 17, 0x5000, AccessType::Data);
    // Any page of the 2MB region hits the large entry.
    TlbHit h = tlb.lookupAny(base + 3, AccessType::Data);
    ASSERT_NE(h.entry, nullptr);
    EXPECT_TRUE(h.entry->large);
    EXPECT_EQ(h.pagePfn, 0x5000u + 3);
    // Pages outside it miss.
    EXPECT_EQ(tlb.lookupAny(base + 512, AccessType::Data).entry,
              nullptr);
}

TEST(LargePages, OneEntryCoversWholeRegion)
{
    TlbHierarchy h{TlbHierarchyParams{}};
    Vpn base = largePageBase(0x300000);
    h.fill(base, 0x9000, AccessType::Data, true);
    for (Vpn v = base; v < base + 512; v += 37) {
        TlbLookupResult r = h.lookup(v, AccessType::Data);
        EXPECT_NE(r.level, TlbHitLevel::Miss);
        EXPECT_EQ(r.pfn, 0x9000u + (v - base));
    }
}

TEST(LargePages, ThpCollapsesDstlbMisses)
{
    // The paper's Figure 2 methodology: with THP for data, the dSTLB
    // footprint collapses while code (4KB pages) still misses.
    SimConfig cfg;
    cfg.warmupInstructions = 200'000;
    cfg.simInstructions = 800'000;
    ServerWorkloadParams wl = qmmWorkloadParams(0);
    SimResult small = runWorkload(cfg, "none", wl);
    wl.dataHugePages = true;
    SimResult huge = runWorkload(cfg, "none", wl);
    EXPECT_LT(huge.dstlbMpki, small.dstlbMpki * 0.5);
    EXPECT_GT(huge.istlbMpki, 0.05);  // code still misses
    EXPECT_GT(huge.ipc, small.ipc);   // fewer walks overall
}

TEST(LargePages, MorriganStillWorksUnderThp)
{
    SimConfig cfg;
    cfg.warmupInstructions = 200'000;
    cfg.simInstructions = 800'000;
    ServerWorkloadParams wl = qmmWorkloadParams(1);
    wl.dataHugePages = true;
    SimResult base = runWorkload(cfg, "none", wl);
    SimResult morr = runWorkload(cfg, "morrigan", wl);
    EXPECT_GT(morr.coverage, 0.10);
    EXPECT_GE(morr.ipc, base.ipc);
}

TEST(LargePagesDeathTest, RejectsMixedMappings)
{
    PhysMem phys(1 << 22, 1);
    PageTable pt(phys);
    pt.mapPage(0x400000);  // 4KB mapping inside the region
    EXPECT_DEATH(pt.mapLargePage(0x400000),
                 "2MB mapping over existing 4KB");
}

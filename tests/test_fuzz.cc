/**
 * @file
 * Config/workload fuzzer: deterministic sampling, metamorphic
 * invariants firing on deliberately doctored run families, and a
 * miniature end-to-end campaign.
 */

#include <algorithm>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "check/fuzz.hh"

using namespace morrigan;
using namespace morrigan::check;

namespace
{

bool
hasFailure(const std::vector<std::string> &fails,
           const std::string &needle)
{
    return std::any_of(fails.begin(), fails.end(),
                       [&](const std::string &f) {
                           return f.find(needle) != std::string::npos;
                       });
}

/** A run family in which every invariant holds. */
SeedRunSet
cleanSet()
{
    SeedRunSet rs;
    rs.fc.cfg.icachePref = ICachePrefKind::None;

    rs.base.checkedTranslations = 1000;
    rs.base.istlbMisses = 500;
    rs.base.dstlbMisses = 300;
    rs.base.pbHits = 100;
    rs.base.demandWalksInstr = 400;

    rs.none = rs.base;
    rs.none.pbHits = 0;
    rs.none.demandWalksInstr = 500;

    rs.zeroBudget = rs.none;

    rs.doubledStlb = rs.none;
    rs.doubledStlb.istlbMisses = 450;
    rs.doubledStlb.dstlbMisses = 280;

    rs.hasSmt = true;
    rs.smtPair.checkMappedPages = 900;
    rs.soloA.checkMappedPages = 500;
    rs.soloB.checkMappedPages = 400;
    return rs;
}

} // namespace

TEST(FuzzInvariants, CleanFamilyPasses)
{
    EXPECT_TRUE(evaluateSeedInvariants(cleanSet(), false).empty());
}

TEST(FuzzInvariants, DiffCheckMismatchFails)
{
    SeedRunSet rs = cleanSet();
    rs.base.checkMismatches = 3;
    EXPECT_TRUE(hasFailure(evaluateSeedInvariants(rs, false),
                           "diff-check: base run diverged"));

    rs = cleanSet();
    rs.doubledStlb.checkMismatches = 1;
    EXPECT_TRUE(hasFailure(evaluateSeedInvariants(rs, false),
                           "diff-check: doubled-stlb run diverged"));
}

TEST(FuzzInvariants, CheckedNothingFails)
{
    SeedRunSet rs = cleanSet();
    rs.base.checkedTranslations = 0;
    EXPECT_TRUE(hasFailure(evaluateSeedInvariants(rs, false),
                           "cross-checked zero translations"));
}

TEST(FuzzInvariants, InjectExpectedFlipsTheOracle)
{
    // With injection, a caught corruption is a PASS...
    SeedRunSet rs = cleanSet();
    rs.base.checkMismatches = 7;
    EXPECT_TRUE(evaluateSeedInvariants(rs, true).empty());

    // ...and an undetected one is the failure.
    rs.base.checkMismatches = 0;
    EXPECT_TRUE(hasFailure(evaluateSeedInvariants(rs, true),
                           "went undetected"));
}

TEST(FuzzInvariants, M1PrefetchingChangedMissesFires)
{
    SeedRunSet rs = cleanSet();
    rs.base.istlbMisses = 499;
    EXPECT_TRUE(hasFailure(evaluateSeedInvariants(rs, false),
                           "M1: prefetching changed iSTLB"));

    rs = cleanSet();
    rs.base.dstlbMisses = 301;
    EXPECT_TRUE(hasFailure(evaluateSeedInvariants(rs, false),
                           "M1: prefetching changed dSTLB"));

    // Injection corrupts the base run's frames by design: M1 is
    // excused there.
    rs = cleanSet();
    rs.base.istlbMisses = 499;
    rs.base.checkMismatches = 1;
    EXPECT_TRUE(evaluateSeedInvariants(rs, true).empty());
}

TEST(FuzzInvariants, M2ZeroBudgetDivergenceFires)
{
    SeedRunSet rs = cleanSet();
    rs.zeroBudget.istlbMisses += 1;
    EXPECT_TRUE(hasFailure(evaluateSeedInvariants(rs, false),
                           "M2: zero-budget prefetcher changed miss"));

    rs = cleanSet();
    rs.zeroBudget.pbHits = 4;
    EXPECT_TRUE(hasFailure(evaluateSeedInvariants(rs, false),
                           "M2: zero-budget prefetcher produced"));

    rs = cleanSet();
    rs.zeroBudget.demandWalksInstr += 2;
    EXPECT_TRUE(hasFailure(
        evaluateSeedInvariants(rs, false),
        "M2: zero-budget prefetcher changed demand"));
}

TEST(FuzzInvariants, M2PbCountersExcusedUnderFnlMma)
{
    // FNL+MMA legitimately stages translations in the PB and reacts
    // to L1I timing; only the miss counts stay comparable.
    SeedRunSet rs = cleanSet();
    rs.fc.cfg.icachePref = ICachePrefKind::FnlMma;
    rs.zeroBudget.pbHits = 21;
    rs.zeroBudget.demandWalksInstr += 5;
    EXPECT_TRUE(evaluateSeedInvariants(rs, false).empty());

    rs.zeroBudget.istlbMisses += 1;  // misses still enforced
    EXPECT_TRUE(hasFailure(evaluateSeedInvariants(rs, false),
                           "M2: zero-budget prefetcher changed miss"));
}

TEST(FuzzInvariants, M3BiggerStlbMustNotMissMore)
{
    SeedRunSet rs = cleanSet();
    rs.doubledStlb.istlbMisses = rs.none.istlbMisses + 1;
    EXPECT_TRUE(hasFailure(evaluateSeedInvariants(rs, false),
                           "M3: doubling STLB ways increased iSTLB"));

    rs = cleanSet();
    rs.doubledStlb.dstlbMisses = rs.none.dstlbMisses + 10;
    EXPECT_TRUE(hasFailure(evaluateSeedInvariants(rs, false),
                           "M3: doubling STLB ways increased dSTLB"));

    // Equal misses (degenerate doubling win) is fine.
    rs = cleanSet();
    rs.doubledStlb.istlbMisses = rs.none.istlbMisses;
    rs.doubledStlb.dstlbMisses = rs.none.dstlbMisses;
    EXPECT_TRUE(evaluateSeedInvariants(rs, false).empty());
}

TEST(FuzzInvariants, M4SmtAdditivityFires)
{
    SeedRunSet rs = cleanSet();
    rs.smtPair.checkMappedPages = 901;
    EXPECT_TRUE(hasFailure(evaluateSeedInvariants(rs, false),
                           "M4: SMT pair mapped"));

    // Non-SMT seeds skip M4 entirely.
    rs.hasSmt = false;
    EXPECT_TRUE(evaluateSeedInvariants(rs, false).empty());
}

TEST(FuzzSampling, SameSeedSamplesSameCase)
{
    FuzzOptions opt;
    FuzzCase a = sampleCase(17, opt);
    FuzzCase b = sampleCase(17, opt);
    EXPECT_EQ(a.summary, b.summary);
    EXPECT_EQ(a.kind, b.kind);
    EXPECT_EQ(a.smt, b.smt);
    EXPECT_EQ(a.cfg.tlb.stlb.entries, b.cfg.tlb.stlb.entries);
    EXPECT_FALSE(a.summary.empty());
}

TEST(FuzzSampling, SeedsCoverDistinctConfigurations)
{
    FuzzOptions opt;
    std::vector<std::string> summaries;
    for (std::uint64_t s = 1; s <= 8; ++s)
        summaries.push_back(sampleCase(s, opt).summary);
    std::sort(summaries.begin(), summaries.end());
    auto last = std::unique(summaries.begin(), summaries.end());
    // Eight seeds must not collapse onto one or two points.
    EXPECT_GE(std::distance(summaries.begin(), last), 4);
}

TEST(FuzzSampling, ReproCommandNamesTheSeed)
{
    FuzzOptions opt;
    opt.instructions = 12345;
    std::string cmd = reproCommand(7, opt);
    EXPECT_NE(cmd.find("--seed-base 7"), std::string::npos);
    EXPECT_NE(cmd.find("--seeds 1"), std::string::npos);
    EXPECT_NE(cmd.find("--instructions 12345"), std::string::npos);
}

TEST(FuzzCampaign, MiniCampaignPassesClean)
{
    FuzzOptions opt;
    opt.seeds = 2;
    opt.seedBase = 1;
    opt.instructions = 40'000;
    opt.warmupInstructions = 10'000;
    FuzzCampaignOutcome out = runCampaign(opt);
    EXPECT_TRUE(out.passed());
    EXPECT_EQ(out.passedSeeds, 2u);
    EXPECT_EQ(out.failedSeeds, 0u);
    ASSERT_EQ(out.seeds.size(), 2u);
    EXPECT_TRUE(out.seeds[0].passed);
    EXPECT_TRUE(out.seeds[0].failures.empty());
}

TEST(FuzzCampaign, InjectedCampaignCatchesTheBug)
{
    FuzzOptions opt;
    opt.seeds = 1;
    opt.seedBase = 1;
    opt.instructions = 40'000;
    opt.warmupInstructions = 10'000;
    opt.injectPeriod = 25;
    FuzzCampaignOutcome out = runCampaign(opt);
    // With injection armed, the seed passes only because the checker
    // caught the corruption.
    EXPECT_TRUE(out.passed());
    ASSERT_EQ(out.seeds.size(), 1u);
    EXPECT_TRUE(out.seeds[0].passed);
}

namespace
{

/** First seed in [1, limit] whose sampled kind satisfies @p want. */
std::uint64_t
findSeedWithKind(const std::function<bool(const std::string &)> &want,
                 std::uint64_t limit = 20'000)
{
    FuzzOptions opt;
    for (std::uint64_t s = 1; s <= limit; ++s) {
        FuzzCase fc = sampleCase(s, opt);
        if (!fc.customMorrigan && want(fc.kind))
            return s;
    }
    return 0;
}

/** Run a one-seed campaign (all of M1-M6) and expect it green. */
void
expectSeedPasses(std::uint64_t seed)
{
    FuzzOptions opt;
    opt.seeds = 1;
    opt.seedBase = seed;
    opt.instructions = 40'000;
    opt.warmupInstructions = 10'000;
    FuzzCampaignOutcome out = runCampaign(opt);
    ASSERT_EQ(out.seeds.size(), 1u);
    EXPECT_TRUE(out.seeds[0].passed)
        << "seed " << seed << " [" << out.seeds[0].summary << "]: "
        << (out.seeds[0].failures.empty()
                ? ""
                : out.seeds[0].failures.front());
}

} // namespace

TEST(FuzzSampling, SamplerDrawsEveryFuzzableRegistryKind)
{
    // Every plugin flagged fuzzable must be reachable by the config
    // sampler -- competitors inherit M1-M6 coverage the moment they
    // register.
    std::vector<std::string> fuzzable;
    for (const PrefetcherPlugin &p :
         PrefetcherRegistry::global().plugins()) {
        if (p.fuzzable)
            fuzzable.push_back(p.name);
    }
    ASSERT_GE(fuzzable.size(), 8u);

    FuzzOptions opt;
    std::set<std::string> drawn;
    bool hybrid_seen = false;
    for (std::uint64_t s = 1; s <= 4000; ++s) {
        FuzzCase fc = sampleCase(s, opt);
        if (fc.customMorrigan)
            continue;
        if (fc.kind.find('+') != std::string::npos)
            hybrid_seen = true;
        for (const std::string &part : splitPrefetcherSpec(fc.kind))
            drawn.insert(part);
    }
    for (const std::string &name : fuzzable)
        EXPECT_TRUE(drawn.count(name))
            << "sampler never drew '" << name << "'";
    EXPECT_TRUE(hybrid_seen) << "sampler never composed a hybrid";
}

// Each new competitor gets a real end-to-end seed through the full
// M1-M6 invariant family (differential check, zero-budget, doubled
// STLB, checkpoint/resume and telemetry bit-identity).

TEST(FuzzCampaign, FnlMmaSeedPassesAllInvariants)
{
    std::uint64_t seed = findSeedWithKind(
        [](const std::string &k) { return k == "fnl-mma"; });
    ASSERT_NE(seed, 0u) << "no seed samples fnl-mma";
    expectSeedPasses(seed);
}

TEST(FuzzCampaign, ManaSeedPassesAllInvariants)
{
    std::uint64_t seed = findSeedWithKind(
        [](const std::string &k) { return k == "mana"; });
    ASSERT_NE(seed, 0u) << "no seed samples mana";
    expectSeedPasses(seed);
}

TEST(FuzzCampaign, FdipSeedPassesAllInvariants)
{
    std::uint64_t seed = findSeedWithKind(
        [](const std::string &k) { return k == "fdip"; });
    ASSERT_NE(seed, 0u) << "no seed samples fdip";
    expectSeedPasses(seed);
}

TEST(FuzzCampaign, HybridSeedPassesAllInvariants)
{
    std::uint64_t seed = findSeedWithKind([](const std::string &k) {
        return k.find('+') != std::string::npos;
    });
    ASSERT_NE(seed, 0u) << "no seed samples a hybrid";
    expectSeedPasses(seed);
}

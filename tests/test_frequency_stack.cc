/** @file Unit tests for the RLFU frequency stack. */

#include <gtest/gtest.h>

#include "core/frequency_stack.hh"

using namespace morrigan;

TEST(FrequencyStack, CountsMisses)
{
    FrequencyStack fs(0);
    fs.recordMiss(1);
    fs.recordMiss(1);
    fs.recordMiss(2);
    EXPECT_EQ(fs.frequency(1), 2u);
    EXPECT_EQ(fs.frequency(2), 1u);
    EXPECT_EQ(fs.frequency(3), 0u);
    EXPECT_EQ(fs.trackedPages(), 2u);
}

TEST(FrequencyStack, PeriodicResetAdaptsToPhases)
{
    FrequencyStack fs(4);
    fs.recordMiss(1);
    fs.recordMiss(1);
    fs.recordMiss(1);
    EXPECT_EQ(fs.frequency(1), 3u);
    fs.recordMiss(1);  // 4th miss triggers the reset
    EXPECT_EQ(fs.frequency(1), 0u);
    EXPECT_EQ(fs.resets(), 1u);
}

TEST(FrequencyStack, ZeroIntervalNeverResets)
{
    FrequencyStack fs(0);
    for (int i = 0; i < 100000; ++i)
        fs.recordMiss(7);
    EXPECT_EQ(fs.frequency(7), 100000u);
    EXPECT_EQ(fs.resets(), 0u);
}

TEST(FrequencyStack, ClearDropsState)
{
    FrequencyStack fs(100);
    fs.recordMiss(9);
    fs.clear();
    EXPECT_EQ(fs.frequency(9), 0u);
    EXPECT_EQ(fs.trackedPages(), 0u);
}

TEST(FrequencyStack, ResetCountsAccumulate)
{
    FrequencyStack fs(2);
    for (int i = 0; i < 10; ++i)
        fs.recordMiss(1);
    EXPECT_EQ(fs.resets(), 5u);
}

/**
 * @file
 * Filesystem fault-injection tests: every MORRIGAN_FAULT_FS mode
 * (enospc, shortwrite, fsyncfail) driven through each durability
 * path -- journal append, snapshot atomic publish, result-cache
 * disk tier -- proving each failure is either cleanly reported or
 * invisible after recovery: no torn journal record replays, no
 * half-published snapshot is ever accepted, no partial cache file
 * is ever served.
 */

#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <string>

#include "common/fault_fs.hh"
#include "common/snapshot.hh"
#include "sim/result_cache.hh"
#include "sim/supervisor.hh"

using namespace morrigan;

namespace
{

/** Minimal but journal-round-trippable Ok outcome. */
RunOutcome
sampleOutcome()
{
    RunOutcome o;
    o.status = RunStatus::Ok;
    o.attempts = 1;
    o.durationMs = 42;
    SimResult &r = o.output.result;
    r.workload = "qmm_00";
    r.prefetcher = "morrigan";
    r.instructions = 1'000'000;
    r.cycles = 1'234'567.5;
    r.ipc = 0.81;
    r.istlbMisses = 4242;
    return o;
}

std::string
tempPath(const char *stem)
{
    return testing::TempDir() + stem;
}

/** Lines currently in @p path (journal observability). */
std::size_t
lineCount(const std::string &path)
{
    std::ifstream f(path);
    std::size_t n = 0;
    std::string line;
    while (std::getline(f, line))
        ++n;
    return n;
}

/** RAII disarm so a failing test never leaks faults into the next. */
struct FaultGuard
{
    ~FaultGuard() { faultfs::setSpec(nullptr); }
};

} // namespace

// ---------------------------------------------------------------
// Shim mechanics
// ---------------------------------------------------------------

TEST(FaultFs, UnarmedByDefaultAndDisarmable)
{
    FaultGuard guard;
    faultfs::setSpec(nullptr);
    EXPECT_FALSE(faultfs::armed());
    faultfs::setSpec("enospc:2");
    EXPECT_TRUE(faultfs::armed());
    faultfs::setSpec("");
    EXPECT_FALSE(faultfs::armed());
}

TEST(FaultFs, FaultsAreConsumedOncePerMatchingOp)
{
    FaultGuard guard;
    const std::string path = tempPath("faultfs-consume.bin");
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                    0644);
    ASSERT_GE(fd, 0);

    const std::size_t before = faultfs::injectedCount();
    faultfs::setSpec("enospc:1");
    errno = 0;
    EXPECT_LT(faultfs::write(fd, "abcd", 4), 0);
    EXPECT_EQ(errno, ENOSPC);
    // The single fault is spent: the next write goes through.
    EXPECT_EQ(faultfs::write(fd, "abcd", 4), 4);
    EXPECT_FALSE(faultfs::armed());
    EXPECT_EQ(faultfs::injectedCount(), before + 1);
    ::close(fd);
    std::remove(path.c_str());
}

TEST(FaultFs, ShortWriteLeavesTornPrefix)
{
    FaultGuard guard;
    const std::string path = tempPath("faultfs-torn.bin");
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                    0644);
    ASSERT_GE(fd, 0);
    faultfs::setSpec("shortwrite:1");
    // The torn half really lands on disk -- that is the point.
    EXPECT_EQ(faultfs::write(fd, "abcdefgh", 8), 4);
    ::close(fd);
    std::ifstream f(path);
    std::string content((std::istreambuf_iterator<char>(f)),
                        std::istreambuf_iterator<char>());
    EXPECT_EQ(content, "abcd");
    std::remove(path.c_str());
}

TEST(FaultFs, FsyncFailReportsEio)
{
    FaultGuard guard;
    const std::string path = tempPath("faultfs-fsync.bin");
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                    0644);
    ASSERT_GE(fd, 0);
    faultfs::setSpec("fsyncfail:1");
    errno = 0;
    EXPECT_NE(faultfs::fsync(fd), 0);
    EXPECT_EQ(errno, EIO);
    EXPECT_EQ(faultfs::fsync(fd), 0);
    ::close(fd);
    std::remove(path.c_str());
}

TEST(FaultFsDeathTest, JunkSpecIsFatal)
{
    EXPECT_EXIT(faultfs::setSpec("enospc:1,typo:3"),
                ::testing::ExitedWithCode(1), "MORRIGAN_FAULT_FS");
    EXPECT_EXIT(faultfs::setSpec("enospc"),
                ::testing::ExitedWithCode(1), "MORRIGAN_FAULT_FS");
}

// ---------------------------------------------------------------
// Journal append under faults
// ---------------------------------------------------------------

TEST(FaultFsJournal, EnospcDropsRecordCleanly)
{
    FaultGuard guard;
    const std::string path = tempPath("faultfs-journal-enospc.jsonl");
    std::remove(path.c_str());
    {
        CampaignJournal j(path);
        faultfs::setSpec("enospc:2"); // both append attempts fail
        j.record("k1", sampleOutcome());
        faultfs::setSpec(nullptr);
        j.record("k2", sampleOutcome());
    }
    // The dropped record is invisible; the later one replays.
    CampaignJournal reloaded(path);
    EXPECT_EQ(reloaded.loadedRecords(), 1u);
    RunOutcome out;
    EXPECT_FALSE(reloaded.lookup("k1", out));
    EXPECT_TRUE(reloaded.lookup("k2", out));
    EXPECT_TRUE(out.fromJournal);
    std::remove(path.c_str());
}

TEST(FaultFsJournal, ShortWriteSealsTornLineAndRetries)
{
    FaultGuard guard;
    const std::string path = tempPath("faultfs-journal-torn.jsonl");
    std::remove(path.c_str());
    {
        CampaignJournal j(path);
        faultfs::setSpec("shortwrite:1");
        // First try tears mid-record; the appender seals the
        // fragment with a newline and rewrites the whole record as a
        // fresh line.
        j.record("k1", sampleOutcome());
    }
    EXPECT_EQ(lineCount(path), 2u) << "torn fragment + clean retry";
    CampaignJournal reloaded(path);
    EXPECT_EQ(reloaded.loadedRecords(), 1u);
    RunOutcome out;
    ASSERT_TRUE(reloaded.lookup("k1", out));
    EXPECT_EQ(out.durationMs, 42u);
    std::remove(path.c_str());
}

TEST(FaultFsJournal, PersistentShortWriteDropsRecordCleanly)
{
    FaultGuard guard;
    const std::string path =
        tempPath("faultfs-journal-torn2.jsonl");
    std::remove(path.c_str());
    {
        CampaignJournal j(path);
        faultfs::setSpec("shortwrite:2"); // retry tears too
        j.record("k1", sampleOutcome());
    }
    // Only sealed fragments remain; reload skips them all.
    CampaignJournal reloaded(path);
    EXPECT_EQ(reloaded.loadedRecords(), 0u);
    std::remove(path.c_str());
}

TEST(FaultFsJournal, FsyncFailureKeepsInProcessRecord)
{
    FaultGuard guard;
    const std::string path =
        tempPath("faultfs-journal-fsync.jsonl");
    std::remove(path.c_str());
    {
        CampaignJournal j(path);
        faultfs::setSpec("fsyncfail:1");
        // fsync failure means "may not survive a power cut", not
        // "gone": the bytes were appended, so a clean close still
        // yields a replayable record (and the warning told the
        // operator the job may rerun after a crash).
        j.record("k1", sampleOutcome());
    }
    CampaignJournal reloaded(path);
    EXPECT_EQ(reloaded.loadedRecords(), 1u);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------
// Snapshot atomic publish under faults
// ---------------------------------------------------------------

namespace
{

SnapshotWriter
sampleSnapshot()
{
    SnapshotWriter w;
    w.section("faultfs-test");
    w.u64(0xdeadbeefULL);
    w.str("payload");
    return w;
}

} // namespace

TEST(FaultFsSnapshot, EveryModeAbortsThePublish)
{
    FaultGuard guard;
    for (const char *spec :
         {"enospc:1", "shortwrite:1", "fsyncfail:1"}) {
        SCOPED_TRACE(spec);
        const std::string path =
            tempPath("faultfs-snapshot.image");
        std::remove(path.c_str());

        SnapshotWriter w = sampleSnapshot();
        faultfs::setSpec(spec);
        EXPECT_THROW(w.writeToFile(path, 1, 2), SnapshotError);
        faultfs::setSpec(nullptr);

        // Cleanly reported (the throw) AND invisible: no file, no
        // half-published temp accepted later.
        SnapshotHeader h;
        EXPECT_FALSE(readSnapshotHeader(path, h))
            << "half-published snapshot became visible";

        // Recovery: the same writer publishes fine once the fault
        // clears, and the image validates.
        w.writeToFile(path, 1, 2);
        EXPECT_TRUE(readSnapshotHeader(path, h));
        SnapshotReader r(path);
        r.section("faultfs-test");
        EXPECT_EQ(r.u64(), 0xdeadbeefULL);
        EXPECT_EQ(r.str(), "payload");
        std::remove(path.c_str());
    }
}

// ---------------------------------------------------------------
// Result-cache disk tier under faults
// ---------------------------------------------------------------

TEST(FaultFsResultCache, EveryModeSuppressesThePublish)
{
    FaultGuard guard;
    for (const char *spec :
         {"enospc:1", "shortwrite:1", "fsyncfail:1"}) {
        SCOPED_TRACE(spec);
        const std::string dir =
            tempPath("faultfs-cache-dir");
        ASSERT_EQ(0,
                  system(("rm -rf '" + dir + "' && mkdir -p '" +
                          dir + "'")
                             .c_str()));

        SimResult r;
        r.workload = "qmm_00";
        r.prefetcher = "morrigan";
        r.ipc = 0.5;

        ResultCache writer;
        writer.setDiskDir(dir);
        faultfs::setSpec(spec);
        writer.insert("faulted-key", r);
        faultfs::setSpec(nullptr);

        // The memory tier still serves this process...
        SimResult out;
        EXPECT_TRUE(writer.lookup("faulted-key", out));

        // ...but nothing partial was published: a fresh instance
        // (fresh process stand-in) sees a plain miss, not an error
        // and not a torn file.
        ResultCache reader;
        reader.setDiskDir(dir);
        EXPECT_FALSE(reader.lookup("faulted-key", out));
        EXPECT_EQ(reader.counts().diskRejects, 0u)
            << "a torn cache file was published";

        // Recovery: the next insert publishes durably.
        writer.insert("clean-key", r);
        ResultCache reader2;
        reader2.setDiskDir(dir);
        EXPECT_TRUE(reader2.lookup("clean-key", out));
        EXPECT_EQ(out.ipc, 0.5);
    }
}

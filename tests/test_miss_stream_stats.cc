/** @file Unit tests for the miss-stream analyser (Figures 5-8). */

#include <gtest/gtest.h>

#include "workload/miss_stream_stats.hh"

using namespace morrigan;

TEST(MissStream, DeltaCdfExact)
{
    MissStreamStats ms;
    ms.record(100);
    ms.record(101);   // delta 1
    ms.record(111);   // delta 10
    ms.record(61);    // |delta| 50
    EXPECT_EQ(ms.totalMisses(), 4u);
    EXPECT_NEAR(ms.deltaCdfAt(1), 1.0 / 3.0, 1e-9);
    EXPECT_NEAR(ms.deltaCdfAt(10), 2.0 / 3.0, 1e-9);
    EXPECT_NEAR(ms.deltaCdfAt(50), 1.0, 1e-9);
}

TEST(MissStream, PagesCoveringFraction)
{
    MissStreamStats ms;
    // Page 1 misses 8 times, page 2 once, page 3 once.
    for (int i = 0; i < 8; ++i)
        ms.record(1);
    ms.record(2);
    ms.record(3);
    EXPECT_EQ(ms.pagesCoveringFraction(0.8), 1u);
    EXPECT_EQ(ms.pagesCoveringFraction(0.9), 2u);
    EXPECT_EQ(ms.pagesCoveringFraction(1.0), 3u);
    EXPECT_EQ(ms.distinctPages(), 3u);
}

TEST(MissStream, SuccessorCountBuckets)
{
    MissStreamStats ms;
    // Stream: 1 2 1 3 1 2 => page 1 has successors {2, 3}.
    for (Vpn v : {1, 2, 1, 3, 1, 2})
        ms.record(v);
    EXPECT_NEAR(ms.successorCountFraction(1, 2), 1.0, 1e-9);
    EXPECT_NEAR(ms.successorCountFraction(3, 8), 0.0, 1e-9);
}

TEST(MissStream, SuccessorProbabilityRanks)
{
    MissStreamStats ms;
    // Page 1 -> 2 three times, 1 -> 3 once.
    for (Vpn v : {1, 2, 1, 2, 1, 2, 1, 3})
        ms.record(v);
    // Rank 0 successor of page 1 is 2 with prob 3/4.
    double r0 = ms.successorProbability(0, 1);
    double r1 = ms.successorProbability(1, 1);
    EXPECT_NEAR(r0, 0.75, 0.1);
    EXPECT_NEAR(r1, 0.25, 0.1);
    EXPECT_NEAR(ms.successorTailProbability(2, 1), 0.0, 0.1);
}

TEST(MissStream, EmptyStreamSafeDefaults)
{
    MissStreamStats ms;
    EXPECT_EQ(ms.totalMisses(), 0u);
    EXPECT_EQ(ms.deltaCdfAt(10), 0.0);
    EXPECT_EQ(ms.pagesCoveringFraction(0.9), 0u);
    EXPECT_EQ(ms.successorProbability(0), 0.0);
}

TEST(MissStream, PagesByMissCountSorted)
{
    MissStreamStats ms;
    ms.record(5);
    for (int i = 0; i < 3; ++i)
        ms.record(7);
    ms.record(5);
    auto pages = ms.pagesByMissCount();
    ASSERT_EQ(pages.size(), 2u);
    EXPECT_EQ(pages[0].first, 7u);
    EXPECT_EQ(pages[0].second, 3u);
    EXPECT_EQ(pages[1].second, 2u);
}

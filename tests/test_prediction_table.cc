/** @file Unit tests for the IRIP prediction table (PRT). */

#include <gtest/gtest.h>

#include "core/prediction_table.hh"

using namespace morrigan;

namespace
{

struct Fixture
{
    FrequencyStack freq{0};  // no resets
    Rng rng{1234};

    PredictionTable
    make(std::uint32_t entries, std::uint32_t ways,
         std::uint32_t slots,
         ReplacementPolicy pol = ReplacementPolicy::Rlfu)
    {
        return PredictionTable({"t", entries, ways, slots}, pol,
                               freq, rng);
    }
};

} // namespace

TEST(Prt, InstallLookup)
{
    Fixture f;
    auto t = f.make(16, 4, 2);
    t.install(0x100, {});
    PrtEntry *e = t.lookup(0x100);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->vpn, 0x100u);
    EXPECT_EQ(e->slots.size(), 2u);
    EXPECT_EQ(t.lookup(0x200), nullptr);
}

TEST(Prt, AddDistanceFillsFreeSlots)
{
    Fixture f;
    auto t = f.make(16, 4, 2);
    t.install(1, {});
    EXPECT_TRUE(t.addDistance(1, 5));
    EXPECT_TRUE(t.addDistance(1, -3));
    EXPECT_FALSE(t.addDistance(1, 7));  // full
}

TEST(Prt, AddExistingDistanceIsIdempotent)
{
    Fixture f;
    auto t = f.make(16, 4, 2);
    t.install(1, {});
    EXPECT_TRUE(t.addDistance(1, 5));
    EXPECT_TRUE(t.addDistance(1, 5));  // already present: ok
    PrtEntry *e = t.probe(1);
    unsigned valid = 0;
    for (const auto &s : e->slots)
        valid += s.valid;
    EXPECT_EQ(valid, 1u);
}

TEST(Prt, AddDistanceToAbsentEntryFails)
{
    Fixture f;
    auto t = f.make(16, 4, 2);
    EXPECT_FALSE(t.addDistance(42, 1));
}

TEST(Prt, ReplaceMinConfidenceSlot)
{
    Fixture f;
    auto t = f.make(16, 4, 2);
    t.install(1, {});
    t.addDistance(1, 5);
    t.addDistance(1, 9);
    t.creditSlot(1, 5);  // slot(5) confidence 1, slot(9) confidence 0
    EXPECT_TRUE(t.replaceMinConfidenceSlot(1, 77));
    PrtEntry *e = t.probe(1);
    bool has5 = false, has9 = false, has77 = false;
    for (const auto &s : e->slots) {
        if (!s.valid)
            continue;
        has5 |= s.distance == 5;
        has9 |= s.distance == 9;
        has77 |= s.distance == 77;
    }
    EXPECT_TRUE(has5);    // survived (higher confidence)
    EXPECT_FALSE(has9);   // victimised
    EXPECT_TRUE(has77);
}

TEST(Prt, CreditSaturatesAtTwoBits)
{
    Fixture f;
    auto t = f.make(16, 4, 1);
    t.install(1, {});
    t.addDistance(1, 3);
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(t.creditSlot(1, 3));
    EXPECT_EQ(t.probe(1)->slots[0].confidence,
              PredictionTable::confidenceMax);
    EXPECT_FALSE(t.creditSlot(1, 99));  // unknown distance
}

TEST(Prt, EraseFreesEntry)
{
    Fixture f;
    auto t = f.make(16, 4, 1);
    t.install(1, {});
    EXPECT_EQ(t.population(), 1u);
    EXPECT_TRUE(t.erase(1));
    EXPECT_FALSE(t.erase(1));
    EXPECT_EQ(t.population(), 0u);
}

TEST(Prt, TransferredSlotsSurviveInstall)
{
    Fixture f;
    auto t = f.make(16, 4, 4);
    PrtSlotList slots;
    slots.resize(2);
    slots[0] = {10, 2, true};
    slots[1] = {-4, 1, true};
    t.install(7, slots);
    PrtEntry *e = t.probe(7);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->slots.size(), 4u);  // resized to geometry
    EXPECT_TRUE(e->slots[0].valid);
    EXPECT_EQ(e->slots[0].distance, 10);
    EXPECT_EQ(e->slots[0].confidence, 2u);
    EXPECT_FALSE(e->slots[2].valid);
}

TEST(Prt, PartialTagAliasing)
{
    // Two VPNs engineered to share set and 16-bit folded tag behave
    // as one entry -- the cost of partial tags the paper accepts.
    Fixture f;
    auto t = f.make(16, 4, 1);
    t.install(0x50, {});
    // Find an aliasing VPN: same set (low bits), same folded tag.
    // With 4 sets, setShift = 2; tag = fold(vpn >> 2). An alias needs
    // (vpn>>2) differing only above bit 47 -- out of practical range,
    // so instead verify non-aliasing VPNs do NOT match.
    EXPECT_EQ(t.probe(0x54), nullptr);
    EXPECT_EQ(t.probe(0x50 + (1 << 10)), nullptr);
}

TEST(Prt, StorageBitsMatchFormula)
{
    Fixture f;
    auto t = f.make(128, 32, 2);
    EXPECT_EQ(t.storageBits(), 128u * (16 + 2 * (15 + 2)));
}

TEST(Prt, MaxDistanceConstant)
{
    EXPECT_EQ(PredictionTable::maxDistance, 16383);
}

/** Replacement policy behaviours over a full set. */
class PrtPolicy : public ::testing::TestWithParam<ReplacementPolicy>
{
};

TEST_P(PrtPolicy, VictimChosenFromSet)
{
    FrequencyStack freq{0};
    Rng rng{7};
    PredictionTable t({"t", 4, 4, 1}, GetParam(), freq, rng);
    for (Vpn v = 0; v < 4; ++v)
        t.install(v * 4, {});  // fully associative single set
    EXPECT_EQ(t.population(), 4u);
    t.install(100, {});
    EXPECT_EQ(t.population(), 4u);  // someone was evicted
    EXPECT_NE(t.probe(100), nullptr);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, PrtPolicy,
    ::testing::Values(ReplacementPolicy::Lru, ReplacementPolicy::Random,
                      ReplacementPolicy::Lfu, ReplacementPolicy::Rlfu));

TEST(PrtPolicy, LfuProtectsFrequentEntries)
{
    FrequencyStack freq{0};
    Rng rng{7};
    PredictionTable t({"t", 4, 4, 1}, ReplacementPolicy::Lfu, freq,
                      rng);
    for (Vpn v = 1; v <= 4; ++v)
        t.install(v, {});
    // Page 1 misses often; pages 2-4 do not.
    for (int i = 0; i < 50; ++i)
        freq.recordMiss(1);
    t.install(99, {});
    EXPECT_NE(t.probe(1), nullptr);  // frequent entry survived
}

TEST(PrtPolicy, RlfuNeverEvictsTheHottestEntry)
{
    FrequencyStack freq{0};
    Rng rng{7};
    PredictionTable t({"t", 8, 8, 1}, ReplacementPolicy::Rlfu, freq,
                      rng);
    for (Vpn v = 1; v <= 8; ++v) {
        t.install(v, {});
        // Graded frequencies: page v missed v*10 times.
        for (Vpn k = 0; k < v * 10; ++k)
            freq.recordMiss(v);
    }
    // Many conflicting installs: the hottest pages (7, 8) must stay,
    // since RLFU victimises only within the least-frequent quartile.
    for (Vpn v = 100; v < 140; ++v)
        t.install(v, {});
    EXPECT_NE(t.probe(8), nullptr);
    EXPECT_NE(t.probe(7), nullptr);
}

TEST(PrtPolicy, LruEvictsOldest)
{
    FrequencyStack freq{0};
    Rng rng{7};
    PredictionTable t({"t", 2, 2, 1}, ReplacementPolicy::Lru, freq,
                      rng);
    t.install(1, {});
    t.install(2, {});
    t.lookup(1);       // refresh 1
    t.install(3, {});  // evicts 2
    EXPECT_NE(t.probe(1), nullptr);
    EXPECT_EQ(t.probe(2), nullptr);
}

TEST(Prt, FlushClearsEverything)
{
    Fixture f;
    auto t = f.make(16, 4, 2);
    t.install(1, {});
    t.addDistance(1, 5);
    t.flush();
    EXPECT_EQ(t.population(), 0u);
    EXPECT_EQ(t.probe(1), nullptr);
}

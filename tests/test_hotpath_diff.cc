/**
 * @file
 * Differential tests for the hot-path data-structure rewrites.
 *
 * Each suite embeds a straightforward reference implementation with
 * the semantics of the original (pre-rewrite) layout -- AoS cache
 * sets with an explicit valid flag and first-invalid-else-LRU victim
 * choice, AoS associative sets, an unordered_map frequency stack,
 * full-range inverse-CDF Zipf sampling -- and drives the reference
 * and the optimised production structure through identical
 * pseudo-random operation sequences, comparing every observable
 * result. The production structures claim bit-identical behaviour;
 * these tests are the proof obligation for that claim at the unit
 * level (the fuzzer and figure goldens cover it end to end).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/assoc_table.hh"
#include "common/rng.hh"
#include "common/zipf.hh"
#include "core/frequency_stack.hh"
#include "mem/cache_model.hh"
#include "vm/page_table.hh"

using namespace morrigan;

namespace
{

// ---------------------------------------------------------------
// Reference cache: array-of-structs ways, explicit valid flag,
// first-invalid way else true-LRU victim (strict < keeps the
// earliest way on ties), exactly the original CacheModel semantics.
// ---------------------------------------------------------------
class RefCache
{
  public:
    explicit RefCache(const CacheParams &p) : params_(p)
    {
        std::uint32_t lines = p.sizeBytes / 64;
        numSets_ = lines / p.ways;
        sets_.assign(numSets_, std::vector<Way>(p.ways));
    }

    bool
    lookup(Addr line)
    {
        ++accesses_;
        auto &set = setOf(line);
        for (auto &w : set) {
            if (w.valid && w.tag == line) {
                w.lastUse = ++clock_;
                return true;
            }
        }
        ++misses_;
        return false;
    }

    bool
    contains(Addr line) const
    {
        const auto &set = setOf(line);
        for (const auto &w : set)
            if (w.valid && w.tag == line)
                return true;
        return false;
    }

    bool
    insert(Addr line, bool is_prefetch)
    {
        auto &set = setOf(line);
        for (auto &w : set) {
            if (w.valid && w.tag == line) {
                w.lastUse = ++clock_;
                return false;
            }
        }
        Way *victim = nullptr;
        for (auto &w : set) {
            if (!w.valid) {
                victim = &w;
                break;
            }
            if (!victim || w.lastUse < victim->lastUse)
                victim = &w;
        }
        bool evicted = victim->valid;
        victim->valid = true;
        victim->tag = line;
        victim->prefetched = is_prefetch;
        victim->lastUse = ++clock_;
        return evicted;
    }

    bool
    invalidate(Addr line)
    {
        auto &set = setOf(line);
        for (auto &w : set) {
            if (w.valid && w.tag == line) {
                w.valid = false;
                w.lastUse = 0;
                return true;
            }
        }
        return false;
    }

    void
    flush()
    {
        for (auto &set : sets_)
            for (auto &w : set)
                w = Way{};
    }

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t misses() const { return misses_; }

  private:
    struct Way
    {
        bool valid = false;
        bool prefetched = false;
        Addr tag = 0;
        std::uint64_t lastUse = 0;
    };

    std::vector<Way> &setOf(Addr line)
    {
        return sets_[line & (numSets_ - 1)];
    }
    const std::vector<Way> &setOf(Addr line) const
    {
        return sets_[line & (numSets_ - 1)];
    }

    CacheParams params_;
    std::uint32_t numSets_;
    std::vector<std::vector<Way>> sets_;
    std::uint64_t clock_ = 0;
    std::uint64_t accesses_ = 0;
    std::uint64_t misses_ = 0;
};

// Deterministic op mix over a line universe a few times larger than
// the cache so hits, misses, evictions and refreshes all occur.
void
driveCacheDiff(const CacheParams &params, std::uint64_t seed,
               int ops)
{
    CacheModel opt(params);
    RefCache ref(params);
    Rng rng(seed, 0x11);
    const Addr universe =
        4 * params.sizeBytes / 64;  // 4x capacity in lines

    for (int i = 0; i < ops; ++i) {
        Addr line = rng.below(static_cast<std::uint32_t>(universe));
        switch (rng.below(8)) {
          case 0:
          case 1:
          case 2:
            ASSERT_EQ(opt.lookup(line), ref.lookup(line))
                << "lookup diverged at op " << i;
            break;
          case 3:
          case 4: {
            bool pf = rng.chance(0.3);
            ASSERT_EQ(opt.insert(line, pf), ref.insert(line, pf))
                << "insert diverged at op " << i;
            break;
          }
          case 5:
          case 6:
            ASSERT_EQ(opt.contains(line), ref.contains(line))
                << "contains diverged at op " << i;
            break;
          default:
            if (rng.chance(0.02)) {
                opt.flush();
                ref.flush();
            } else {
                ASSERT_EQ(opt.invalidate(line), ref.invalidate(line))
                    << "invalidate diverged at op " << i;
            }
        }
    }
    EXPECT_EQ(opt.demandAccesses(), ref.accesses());
    EXPECT_EQ(opt.demandMisses(), ref.misses());
}

// ---------------------------------------------------------------
// Reference associative table: AoS entries per set, identical way
// scan order and first-invalid-else-LRU victim policy.
// ---------------------------------------------------------------
class RefAssoc
{
  public:
    RefAssoc(std::uint32_t entries, std::uint32_t ways)
        : ways_(ways), numSets_(entries / ways),
          sets_(numSets_, std::vector<Entry>(ways))
    {
    }

    std::uint32_t *
    find(std::uint64_t key)
    {
        auto &set = setOf(key);
        for (auto &e : set) {
            if (e.valid && e.key == key) {
                e.lastUse = ++clock_;
                return &e.value;
            }
        }
        return nullptr;
    }

    const std::uint32_t *
    probe(std::uint64_t key) const
    {
        const auto &set = setOf(key);
        for (const auto &e : set)
            if (e.valid && e.key == key)
                return &e.value;
        return nullptr;
    }

    bool
    insert(std::uint64_t key, std::uint32_t value,
           std::uint64_t *evicted_key, std::uint32_t *evicted_value)
    {
        auto &set = setOf(key);
        for (auto &e : set) {
            if (e.valid && e.key == key) {
                e.value = value;
                e.lastUse = ++clock_;
                return false;
            }
        }
        Entry *victim = nullptr;
        for (auto &e : set) {
            if (!e.valid) {
                victim = &e;
                break;
            }
            if (!victim || e.lastUse < victim->lastUse)
                victim = &e;
        }
        bool evicted = victim->valid;
        if (evicted) {
            *evicted_key = victim->key;
            *evicted_value = victim->value;
        }
        victim->valid = true;
        victim->key = key;
        victim->value = value;
        victim->lastUse = ++clock_;
        if (!evicted)
            ++population_;
        return evicted;
    }

    bool
    insertNoEvict(std::uint64_t key, std::uint32_t value)
    {
        auto &set = setOf(key);
        for (auto &e : set) {
            if (e.valid && e.key == key) {
                e.value = value;
                e.lastUse = ++clock_;
                return true;
            }
        }
        for (auto &e : set) {
            if (!e.valid) {
                e.valid = true;
                e.key = key;
                e.value = value;
                e.lastUse = ++clock_;
                ++population_;
                return true;
            }
        }
        return false;
    }

    bool
    erase(std::uint64_t key)
    {
        auto &set = setOf(key);
        for (auto &e : set) {
            if (e.valid && e.key == key) {
                e.valid = false;
                --population_;
                return true;
            }
        }
        return false;
    }

    std::uint32_t population() const { return population_; }

  private:
    struct Entry
    {
        bool valid = false;
        std::uint64_t key = 0;
        std::uint32_t value = 0;
        std::uint64_t lastUse = 0;
    };

    std::vector<Entry> &setOf(std::uint64_t key)
    {
        return sets_[static_cast<std::uint32_t>(key) &
                     (numSets_ - 1)];
    }
    const std::vector<Entry> &setOf(std::uint64_t key) const
    {
        return sets_[static_cast<std::uint32_t>(key) &
                     (numSets_ - 1)];
    }

    std::uint32_t ways_;
    std::uint32_t numSets_;
    std::vector<std::vector<Entry>> sets_;
    std::uint64_t clock_ = 0;
    std::uint32_t population_ = 0;
};

void
driveAssocDiff(std::uint32_t entries, std::uint32_t ways,
               std::uint64_t seed, int ops)
{
    SetAssocTable<std::uint64_t, std::uint32_t> opt(entries, ways);
    RefAssoc ref(entries, ways);
    Rng rng(seed, 0x22);
    const std::uint32_t universe = 4 * entries;

    for (int i = 0; i < ops; ++i) {
        std::uint64_t key = rng.below(universe);
        std::uint32_t value = rng.next32();
        switch (rng.below(6)) {
          case 0:
          case 1: {
            std::uint32_t *a = opt.find(key);
            std::uint32_t *b = ref.find(key);
            ASSERT_EQ(a != nullptr, b != nullptr)
                << "find diverged at op " << i;
            if (a)
                ASSERT_EQ(*a, *b);
            break;
          }
          case 2: {
            const auto &copt = opt;
            const std::uint32_t *a = copt.probe(key);
            const std::uint32_t *b = ref.probe(key);
            ASSERT_EQ(a != nullptr, b != nullptr)
                << "probe diverged at op " << i;
            if (a)
                ASSERT_EQ(*a, *b);
            break;
          }
          case 3: {
            std::uint64_t ek_a = 0, ek_b = 0;
            std::uint32_t ev_a = 0, ev_b = 0;
            bool ea = opt.insert(key, value, &ek_a, &ev_a);
            bool eb = ref.insert(key, value, &ek_b, &ev_b);
            ASSERT_EQ(ea, eb) << "insert diverged at op " << i;
            if (ea) {
                ASSERT_EQ(ek_a, ek_b);
                ASSERT_EQ(ev_a, ev_b);
            }
            break;
          }
          case 4:
            ASSERT_EQ(opt.insertNoEvict(key, value),
                      ref.insertNoEvict(key, value))
                << "insertNoEvict diverged at op " << i;
            break;
          default:
            ASSERT_EQ(opt.erase(key), ref.erase(key))
                << "erase diverged at op " << i;
        }
        ASSERT_EQ(opt.population(), ref.population());
    }
}

} // namespace

TEST(HotpathDiff, CacheModelMatchesAosReference)
{
    // L1-like: 64 sets x 8 ways (one full AVX2 row per set).
    driveCacheDiff(CacheParams{"l1", 32 * 1024, 8, 4, 8}, 1, 200000);
    // LLC-like: 16 ways (two AVX2 rows per set).
    driveCacheDiff(CacheParams{"llc", 256 * 1024, 16, 10, 16}, 2,
                   200000);
    // Ways not a multiple of the SIMD width exercise row padding.
    driveCacheDiff(CacheParams{"odd", 24 * 1024, 6, 4, 8}, 3, 200000);
}

TEST(HotpathDiff, AssocTableMatchesAosReference)
{
    driveAssocDiff(64, 4, 1, 100000);    // iTLB-like
    driveAssocDiff(1536, 12, 2, 100000); // STLB-like
    driveAssocDiff(64, 64, 3, 100000);   // fully associative
}

TEST(HotpathDiff, ZipfGuidedSearchMatchesFullRange)
{
    const std::pair<std::size_t, double> cases[] = {
        {320, 0.98}, {64, 0.9}, {777, 1.21}, {1, 0.5}};
    for (auto [n, theta] : cases) {
        ZipfSampler z(n, theta);
        // Rebuild the CDF exactly as the sampler's constructor does
        // (same expression order, so identical doubles), then answer
        // every draw with the original full-range lower_bound.
        std::vector<double> cdf(n);
        double acc = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            acc += 1.0 / std::pow(static_cast<double>(i + 1), theta);
            cdf[i] = acc;
        }
        for (std::size_t i = 0; i < n; ++i)
            cdf[i] /= acc;

        Rng a(7, 0x33), b(7, 0x33);
        for (int i = 0; i < 200000; ++i) {
            std::size_t got = z.sample(a);
            double u = b.uniform();
            auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
            std::size_t want = it == cdf.end()
                                   ? n - 1
                                   : static_cast<std::size_t>(
                                         it - cdf.begin());
            ASSERT_EQ(got, want)
                << "guided sample diverged at draw " << i << " (n="
                << n << ", theta=" << theta << ")";
        }
    }
}

TEST(HotpathDiff, FrequencyStackMatchesMapReference)
{
    for (std::uint64_t interval : {std::uint64_t{0}, std::uint64_t{64},
                                   std::uint64_t{8192}}) {
        FrequencyStack opt(interval);
        std::unordered_map<Vpn, std::uint32_t> ref;
        std::uint64_t sinceReset = 0, resets = 0;
        Rng rng(interval + 5, 0x44);

        for (int i = 0; i < 100000; ++i) {
            Vpn vpn = rng.below(512);
            if (rng.chance(0.9)) {
                opt.recordMiss(vpn);
                ++ref[vpn];
                if (interval != 0 && ++sinceReset >= interval) {
                    ref.clear();
                    sinceReset = 0;
                    ++resets;
                }
            } else if (rng.chance(0.02)) {
                opt.clear();
                ref.clear();
                sinceReset = 0;
            } else {
                auto it = ref.find(vpn);
                std::uint32_t want =
                    it == ref.end() ? 0 : it->second;
                ASSERT_EQ(opt.frequency(vpn), want)
                    << "frequency diverged at op " << i;
            }
            ASSERT_EQ(opt.trackedPages(), ref.size());
        }
        EXPECT_EQ(opt.resets(), resets);
    }
}

namespace
{

/** Mirrors mapping creation into plain maps for cross-checking
 * translate(). */
class MirrorObserver : public PageTableObserver
{
  public:
    void onMap4K(Vpn vpn, Pfn pfn) override { map4k[vpn] = pfn; }
    void onMap2M(Vpn base_vpn, Pfn base_pfn) override
    {
        map2m[base_vpn] = base_pfn;
    }

    std::unordered_map<Vpn, Pfn> map4k;
    std::unordered_map<Vpn, Pfn> map2m;
};

} // namespace

TEST(HotpathDiff, PageTableTranslateMatchesMirror)
{
    PhysMem phys{1 << 20, 1};
    PageTable pt{phys};
    MirrorObserver mirror;
    pt.setObserver(&mirror);

    pt.mapRange(0x10000, 700);
    pt.mapLargePage(0x8000000);
    pt.mapLargePage(0x8000000 + pagesPerLargePage);
    Rng rng(9, 0x55);
    for (int i = 0; i < 300; ++i)
        pt.mapPage(0x20000 + rng.below(4096));

    auto check = [&](Vpn vpn) {
        TranslateResult got = pt.translate(vpn);
        auto it4 = mirror.map4k.find(vpn);
        if (it4 != mirror.map4k.end()) {
            EXPECT_TRUE(got.mapped);
            EXPECT_FALSE(got.large);
            EXPECT_EQ(got.pfn, it4->second);
            return;
        }
        auto it2 = mirror.map2m.find(largePageBase(vpn));
        if (it2 != mirror.map2m.end()) {
            EXPECT_TRUE(got.mapped);
            EXPECT_TRUE(got.large);
            EXPECT_EQ(got.pfn,
                      it2->second + (vpn & (pagesPerLargePage - 1)));
            return;
        }
        EXPECT_FALSE(got.mapped);
    };

    for (Vpn vpn = 0x10000 - 8; vpn < 0x10000 + 708; ++vpn)
        check(vpn);
    for (Vpn vpn = 0x8000000 - 8;
         vpn < 0x8000000 + 2 * pagesPerLargePage + 8; ++vpn)
        check(vpn);
    for (int i = 0; i < 5000; ++i)
        check(0x20000 + rng.below(8192));
}

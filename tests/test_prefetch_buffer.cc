/** @file Unit tests for the STLB prefetch buffer. */

#include <gtest/gtest.h>

#include "tlb/prefetch_buffer.hh"

using namespace morrigan;

namespace
{

PbEntry
entry(Pfn pfn, Cycle ready = 0,
      PrefetchProducer p = PrefetchProducer::Irip)
{
    PbEntry e;
    e.pfn = pfn;
    e.readyAt = ready;
    e.tag.producer = p;
    return e;
}

} // namespace

TEST(PrefetchBuffer, HitConsumesEntry)
{
    PrefetchBuffer pb(4, 2);
    pb.insert(0x10, entry(0x99));
    PbLookupResult r = pb.lookupAndConsume(0x10, 100);
    EXPECT_TRUE(r.hit);
    EXPECT_FALSE(r.pending);
    EXPECT_EQ(r.entry.pfn, 0x99u);
    // Entry moved to the STLB: a second lookup misses.
    EXPECT_FALSE(pb.lookupAndConsume(0x10, 101).hit);
}

TEST(PrefetchBuffer, PendingHitWhenWalkInFlight)
{
    PrefetchBuffer pb(4, 2);
    pb.insert(0x20, entry(1, 500));
    PbLookupResult r = pb.lookupAndConsume(0x20, 100);
    EXPECT_TRUE(r.hit);
    EXPECT_TRUE(r.pending);
    EXPECT_EQ(r.entry.readyAt, 500u);
}

TEST(PrefetchBuffer, DuplicateInsertsDropped)
{
    PrefetchBuffer pb(4, 2);
    pb.insert(0x30, entry(1));
    pb.insert(0x30, entry(2));
    EXPECT_EQ(pb.inserts(), 1u);
    EXPECT_EQ(pb.lookupAndConsume(0x30, 0).entry.pfn, 1u);
}

TEST(PrefetchBuffer, CapacityEvictsLru)
{
    PrefetchBuffer pb(2, 2);
    pb.insert(1, entry(1));
    pb.insert(2, entry(2));
    pb.insert(3, entry(3));  // evicts 1 (LRU)
    EXPECT_FALSE(pb.contains(1));
    EXPECT_TRUE(pb.contains(2));
    EXPECT_TRUE(pb.contains(3));
}

TEST(PrefetchBuffer, UselessEvictionCounting)
{
    PrefetchBuffer pb(1, 2);
    pb.insert(1, entry(1));
    pb.insert(2, entry(2));  // evicts 1, which never hit
    EXPECT_EQ(pb.uselessEvictions(), 1u);
}

TEST(PrefetchBuffer, OpportunisticInsertNeverEvicts)
{
    PrefetchBuffer pb(2, 2);
    pb.insert(1, entry(1));
    pb.insert(2, entry(2));
    pb.insertOpportunistic(3, entry(3));
    EXPECT_FALSE(pb.contains(3));
    EXPECT_TRUE(pb.contains(1));
    EXPECT_TRUE(pb.contains(2));
    // With space available it does install.
    pb.lookupAndConsume(1, 0);
    pb.insertOpportunistic(4, entry(4));
    EXPECT_TRUE(pb.contains(4));
}

TEST(PrefetchBuffer, PeekDoesNotConsume)
{
    PrefetchBuffer pb(4, 2);
    pb.insert(0x50, entry(0x5));
    const PbEntry *e = pb.peek(0x50);
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(e->pfn, 0x5u);
    EXPECT_TRUE(pb.contains(0x50));
}

TEST(PrefetchBuffer, HitsAttributedToProducer)
{
    PrefetchBuffer pb(8, 2);
    pb.insert(1, entry(1, 0, PrefetchProducer::Irip));
    pb.insert(2, entry(2, 0, PrefetchProducer::Sdp));
    pb.lookupAndConsume(1, 0);
    pb.lookupAndConsume(2, 0);
    EXPECT_EQ(pb.hitsFrom(PrefetchProducer::Irip), 1u);
    EXPECT_EQ(pb.hitsFrom(PrefetchProducer::Sdp), 1u);
    EXPECT_EQ(pb.hitsFrom(PrefetchProducer::ICache), 0u);
}

TEST(PrefetchBuffer, FlushEmpties)
{
    PrefetchBuffer pb(4, 2);
    pb.insert(1, entry(1));
    pb.flush();
    EXPECT_FALSE(pb.contains(1));
}

TEST(PrefetchBuffer, MissStatsCount)
{
    PrefetchBuffer pb(4, 2);
    pb.lookupAndConsume(9, 0);
    EXPECT_EQ(pb.misses(), 1u);
    EXPECT_EQ(pb.hits(), 0u);
}

# Empty compiler generated dependencies file for morrigan_icache.
# This may be replaced when dependencies are built.

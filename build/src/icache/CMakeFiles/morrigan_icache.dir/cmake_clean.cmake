file(REMOVE_RECURSE
  "CMakeFiles/morrigan_icache.dir/fnl_mma.cc.o"
  "CMakeFiles/morrigan_icache.dir/fnl_mma.cc.o.d"
  "libmorrigan_icache.a"
  "libmorrigan_icache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morrigan_icache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

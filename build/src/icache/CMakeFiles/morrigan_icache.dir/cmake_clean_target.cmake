file(REMOVE_RECURSE
  "libmorrigan_icache.a"
)

# Empty compiler generated dependencies file for morrigan_sim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libmorrigan_sim.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/morrigan_sim.dir/experiment.cc.o"
  "CMakeFiles/morrigan_sim.dir/experiment.cc.o.d"
  "CMakeFiles/morrigan_sim.dir/simulator.cc.o"
  "CMakeFiles/morrigan_sim.dir/simulator.cc.o.d"
  "libmorrigan_sim.a"
  "libmorrigan_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morrigan_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libmorrigan_workload.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/miss_stream_stats.cc" "src/workload/CMakeFiles/morrigan_workload.dir/miss_stream_stats.cc.o" "gcc" "src/workload/CMakeFiles/morrigan_workload.dir/miss_stream_stats.cc.o.d"
  "/root/repo/src/workload/server_workload.cc" "src/workload/CMakeFiles/morrigan_workload.dir/server_workload.cc.o" "gcc" "src/workload/CMakeFiles/morrigan_workload.dir/server_workload.cc.o.d"
  "/root/repo/src/workload/workload_factory.cc" "src/workload/CMakeFiles/morrigan_workload.dir/workload_factory.cc.o" "gcc" "src/workload/CMakeFiles/morrigan_workload.dir/workload_factory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/morrigan_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

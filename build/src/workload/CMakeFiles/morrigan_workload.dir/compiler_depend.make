# Empty compiler generated dependencies file for morrigan_workload.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/morrigan_workload.dir/miss_stream_stats.cc.o"
  "CMakeFiles/morrigan_workload.dir/miss_stream_stats.cc.o.d"
  "CMakeFiles/morrigan_workload.dir/server_workload.cc.o"
  "CMakeFiles/morrigan_workload.dir/server_workload.cc.o.d"
  "CMakeFiles/morrigan_workload.dir/workload_factory.cc.o"
  "CMakeFiles/morrigan_workload.dir/workload_factory.cc.o.d"
  "libmorrigan_workload.a"
  "libmorrigan_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morrigan_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for morrigan_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/morrigan_core.dir/baseline_prefetchers.cc.o"
  "CMakeFiles/morrigan_core.dir/baseline_prefetchers.cc.o.d"
  "CMakeFiles/morrigan_core.dir/irip.cc.o"
  "CMakeFiles/morrigan_core.dir/irip.cc.o.d"
  "CMakeFiles/morrigan_core.dir/morrigan.cc.o"
  "CMakeFiles/morrigan_core.dir/morrigan.cc.o.d"
  "CMakeFiles/morrigan_core.dir/prediction_table.cc.o"
  "CMakeFiles/morrigan_core.dir/prediction_table.cc.o.d"
  "CMakeFiles/morrigan_core.dir/prefetcher_factory.cc.o"
  "CMakeFiles/morrigan_core.dir/prefetcher_factory.cc.o.d"
  "libmorrigan_core.a"
  "libmorrigan_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morrigan_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

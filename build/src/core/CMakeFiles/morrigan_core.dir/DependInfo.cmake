
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/baseline_prefetchers.cc" "src/core/CMakeFiles/morrigan_core.dir/baseline_prefetchers.cc.o" "gcc" "src/core/CMakeFiles/morrigan_core.dir/baseline_prefetchers.cc.o.d"
  "/root/repo/src/core/irip.cc" "src/core/CMakeFiles/morrigan_core.dir/irip.cc.o" "gcc" "src/core/CMakeFiles/morrigan_core.dir/irip.cc.o.d"
  "/root/repo/src/core/morrigan.cc" "src/core/CMakeFiles/morrigan_core.dir/morrigan.cc.o" "gcc" "src/core/CMakeFiles/morrigan_core.dir/morrigan.cc.o.d"
  "/root/repo/src/core/prediction_table.cc" "src/core/CMakeFiles/morrigan_core.dir/prediction_table.cc.o" "gcc" "src/core/CMakeFiles/morrigan_core.dir/prediction_table.cc.o.d"
  "/root/repo/src/core/prefetcher_factory.cc" "src/core/CMakeFiles/morrigan_core.dir/prefetcher_factory.cc.o" "gcc" "src/core/CMakeFiles/morrigan_core.dir/prefetcher_factory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/morrigan_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tlb/CMakeFiles/morrigan_tlb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

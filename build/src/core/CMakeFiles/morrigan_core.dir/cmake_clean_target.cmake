file(REMOVE_RECURSE
  "libmorrigan_core.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/morrigan_mem.dir/cache_model.cc.o"
  "CMakeFiles/morrigan_mem.dir/cache_model.cc.o.d"
  "CMakeFiles/morrigan_mem.dir/dram_model.cc.o"
  "CMakeFiles/morrigan_mem.dir/dram_model.cc.o.d"
  "CMakeFiles/morrigan_mem.dir/memory_hierarchy.cc.o"
  "CMakeFiles/morrigan_mem.dir/memory_hierarchy.cc.o.d"
  "libmorrigan_mem.a"
  "libmorrigan_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morrigan_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

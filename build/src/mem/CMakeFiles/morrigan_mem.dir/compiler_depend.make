# Empty compiler generated dependencies file for morrigan_mem.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libmorrigan_mem.a"
)

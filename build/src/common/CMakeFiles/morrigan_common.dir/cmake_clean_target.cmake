file(REMOVE_RECURSE
  "libmorrigan_common.a"
)

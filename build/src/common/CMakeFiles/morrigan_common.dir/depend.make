# Empty dependencies file for morrigan_common.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/morrigan_common.dir/logging.cc.o"
  "CMakeFiles/morrigan_common.dir/logging.cc.o.d"
  "CMakeFiles/morrigan_common.dir/stats.cc.o"
  "CMakeFiles/morrigan_common.dir/stats.cc.o.d"
  "CMakeFiles/morrigan_common.dir/zipf.cc.o"
  "CMakeFiles/morrigan_common.dir/zipf.cc.o.d"
  "libmorrigan_common.a"
  "libmorrigan_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morrigan_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/morrigan_tlb.dir/prefetch_buffer.cc.o"
  "CMakeFiles/morrigan_tlb.dir/prefetch_buffer.cc.o.d"
  "CMakeFiles/morrigan_tlb.dir/tlb.cc.o"
  "CMakeFiles/morrigan_tlb.dir/tlb.cc.o.d"
  "CMakeFiles/morrigan_tlb.dir/tlb_hierarchy.cc.o"
  "CMakeFiles/morrigan_tlb.dir/tlb_hierarchy.cc.o.d"
  "libmorrigan_tlb.a"
  "libmorrigan_tlb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morrigan_tlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for morrigan_tlb.
# This may be replaced when dependencies are built.

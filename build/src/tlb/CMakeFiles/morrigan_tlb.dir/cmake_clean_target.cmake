file(REMOVE_RECURSE
  "libmorrigan_tlb.a"
)

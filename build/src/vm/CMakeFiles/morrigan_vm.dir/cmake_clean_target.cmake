file(REMOVE_RECURSE
  "libmorrigan_vm.a"
)

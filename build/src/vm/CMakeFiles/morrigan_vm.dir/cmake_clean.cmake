file(REMOVE_RECURSE
  "CMakeFiles/morrigan_vm.dir/page_table.cc.o"
  "CMakeFiles/morrigan_vm.dir/page_table.cc.o.d"
  "CMakeFiles/morrigan_vm.dir/phys_mem.cc.o"
  "CMakeFiles/morrigan_vm.dir/phys_mem.cc.o.d"
  "CMakeFiles/morrigan_vm.dir/psc.cc.o"
  "CMakeFiles/morrigan_vm.dir/psc.cc.o.d"
  "CMakeFiles/morrigan_vm.dir/walker.cc.o"
  "CMakeFiles/morrigan_vm.dir/walker.cc.o.d"
  "libmorrigan_vm.a"
  "libmorrigan_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morrigan_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

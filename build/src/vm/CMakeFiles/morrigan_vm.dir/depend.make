# Empty dependencies file for morrigan_vm.
# This may be replaced when dependencies are built.

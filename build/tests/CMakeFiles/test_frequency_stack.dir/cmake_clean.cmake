file(REMOVE_RECURSE
  "CMakeFiles/test_frequency_stack.dir/test_frequency_stack.cc.o"
  "CMakeFiles/test_frequency_stack.dir/test_frequency_stack.cc.o.d"
  "test_frequency_stack"
  "test_frequency_stack.pdb"
  "test_frequency_stack[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_frequency_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

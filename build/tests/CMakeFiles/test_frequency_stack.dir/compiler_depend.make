# Empty compiler generated dependencies file for test_frequency_stack.
# This may be replaced when dependencies are built.

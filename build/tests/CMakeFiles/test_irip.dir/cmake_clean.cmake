file(REMOVE_RECURSE
  "CMakeFiles/test_irip.dir/test_irip.cc.o"
  "CMakeFiles/test_irip.dir/test_irip.cc.o.d"
  "test_irip"
  "test_irip.pdb"
  "test_irip[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_irip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

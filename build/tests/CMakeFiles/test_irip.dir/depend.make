# Empty dependencies file for test_irip.
# This may be replaced when dependencies are built.

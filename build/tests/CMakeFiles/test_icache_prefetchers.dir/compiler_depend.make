# Empty compiler generated dependencies file for test_icache_prefetchers.
# This may be replaced when dependencies are built.

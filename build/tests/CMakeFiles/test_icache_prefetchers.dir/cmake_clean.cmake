file(REMOVE_RECURSE
  "CMakeFiles/test_icache_prefetchers.dir/test_icache_prefetchers.cc.o"
  "CMakeFiles/test_icache_prefetchers.dir/test_icache_prefetchers.cc.o.d"
  "test_icache_prefetchers"
  "test_icache_prefetchers.pdb"
  "test_icache_prefetchers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_icache_prefetchers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_baseline_prefetchers.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_baseline_prefetchers.dir/test_baseline_prefetchers.cc.o"
  "CMakeFiles/test_baseline_prefetchers.dir/test_baseline_prefetchers.cc.o.d"
  "test_baseline_prefetchers"
  "test_baseline_prefetchers.pdb"
  "test_baseline_prefetchers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_baseline_prefetchers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_walker.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_miss_stream_stats.
# This may be replaced when dependencies are built.

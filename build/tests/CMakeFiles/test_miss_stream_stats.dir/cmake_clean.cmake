file(REMOVE_RECURSE
  "CMakeFiles/test_miss_stream_stats.dir/test_miss_stream_stats.cc.o"
  "CMakeFiles/test_miss_stream_stats.dir/test_miss_stream_stats.cc.o.d"
  "test_miss_stream_stats"
  "test_miss_stream_stats.pdb"
  "test_miss_stream_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_miss_stream_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

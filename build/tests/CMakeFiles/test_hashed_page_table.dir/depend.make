# Empty dependencies file for test_hashed_page_table.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_hashed_page_table.dir/test_hashed_page_table.cc.o"
  "CMakeFiles/test_hashed_page_table.dir/test_hashed_page_table.cc.o.d"
  "test_hashed_page_table"
  "test_hashed_page_table.pdb"
  "test_hashed_page_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hashed_page_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_server_workload.dir/test_server_workload.cc.o"
  "CMakeFiles/test_server_workload.dir/test_server_workload.cc.o.d"
  "test_server_workload"
  "test_server_workload.pdb"
  "test_server_workload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_server_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_psc.
# This may be replaced when dependencies are built.

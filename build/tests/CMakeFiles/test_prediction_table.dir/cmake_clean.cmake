file(REMOVE_RECURSE
  "CMakeFiles/test_prediction_table.dir/test_prediction_table.cc.o"
  "CMakeFiles/test_prediction_table.dir/test_prediction_table.cc.o.d"
  "test_prediction_table"
  "test_prediction_table.pdb"
  "test_prediction_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prediction_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_prediction_table.cc" "tests/CMakeFiles/test_prediction_table.dir/test_prediction_table.cc.o" "gcc" "tests/CMakeFiles/test_prediction_table.dir/test_prediction_table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/morrigan_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/morrigan_core.dir/DependInfo.cmake"
  "/root/repo/build/src/icache/CMakeFiles/morrigan_icache.dir/DependInfo.cmake"
  "/root/repo/build/src/tlb/CMakeFiles/morrigan_tlb.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/morrigan_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/morrigan_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/morrigan_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/morrigan_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

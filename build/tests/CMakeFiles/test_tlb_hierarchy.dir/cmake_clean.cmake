file(REMOVE_RECURSE
  "CMakeFiles/test_tlb_hierarchy.dir/test_tlb_hierarchy.cc.o"
  "CMakeFiles/test_tlb_hierarchy.dir/test_tlb_hierarchy.cc.o.d"
  "test_tlb_hierarchy"
  "test_tlb_hierarchy.pdb"
  "test_tlb_hierarchy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tlb_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_assoc_table.dir/test_assoc_table.cc.o"
  "CMakeFiles/test_assoc_table.dir/test_assoc_table.cc.o.d"
  "test_assoc_table"
  "test_assoc_table.pdb"
  "test_assoc_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_assoc_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_assoc_table.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for test_morrigan.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_morrigan.dir/test_morrigan.cc.o"
  "CMakeFiles/test_morrigan.dir/test_morrigan.cc.o.d"
  "test_morrigan"
  "test_morrigan.pdb"
  "test_morrigan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_morrigan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for morrigan_sim_cli.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/morrigan_sim_cli.dir/morrigan_sim.cc.o"
  "CMakeFiles/morrigan_sim_cli.dir/morrigan_sim.cc.o.d"
  "morrigan-sim"
  "morrigan-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morrigan_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig07_successors.
# This may be replaced when dependencies are built.

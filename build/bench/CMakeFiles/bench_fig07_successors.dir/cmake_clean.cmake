file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_successors.dir/bench_fig07_successors.cc.o"
  "CMakeFiles/bench_fig07_successors.dir/bench_fig07_successors.cc.o.d"
  "bench_fig07_successors"
  "bench_fig07_successors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_successors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_successor_prob.dir/bench_fig08_successor_prob.cc.o"
  "CMakeFiles/bench_fig08_successor_prob.dir/bench_fig08_successor_prob.cc.o.d"
  "bench_fig08_successor_prob"
  "bench_fig08_successor_prob.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_successor_prob.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig08_successor_prob.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_fig09_dstlb_prefetchers.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_walk_refs.dir/bench_fig16_walk_refs.cc.o"
  "CMakeFiles/bench_fig16_walk_refs.dir/bench_fig16_walk_refs.cc.o.d"
  "bench_fig16_walk_refs"
  "bench_fig16_walk_refs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_walk_refs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig16_walk_refs.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_fig18_other_approaches.
# This may be replaced when dependencies are built.

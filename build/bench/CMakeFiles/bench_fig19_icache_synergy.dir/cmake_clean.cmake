file(REMOVE_RECURSE
  "CMakeFiles/bench_fig19_icache_synergy.dir/bench_fig19_icache_synergy.cc.o"
  "CMakeFiles/bench_fig19_icache_synergy.dir/bench_fig19_icache_synergy.cc.o.d"
  "bench_fig19_icache_synergy"
  "bench_fig19_icache_synergy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig19_icache_synergy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig19_icache_synergy.
# This may be replaced when dependencies are built.

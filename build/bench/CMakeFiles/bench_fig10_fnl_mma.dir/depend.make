# Empty dependencies file for bench_fig10_fnl_mma.
# This may be replaced when dependencies are built.

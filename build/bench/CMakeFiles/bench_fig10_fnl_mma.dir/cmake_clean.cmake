file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_fnl_mma.dir/bench_fig10_fnl_mma.cc.o"
  "CMakeFiles/bench_fig10_fnl_mma.dir/bench_fig10_fnl_mma.cc.o.d"
  "bench_fig10_fnl_mma"
  "bench_fig10_fnl_mma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_fnl_mma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_istlb_cycles.dir/bench_fig04_istlb_cycles.cc.o"
  "CMakeFiles/bench_fig04_istlb_cycles.dir/bench_fig04_istlb_cycles.cc.o.d"
  "bench_fig04_istlb_cycles"
  "bench_fig04_istlb_cycles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_istlb_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

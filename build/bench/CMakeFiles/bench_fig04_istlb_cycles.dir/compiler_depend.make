# Empty compiler generated dependencies file for bench_fig04_istlb_cycles.
# This may be replaced when dependencies are built.

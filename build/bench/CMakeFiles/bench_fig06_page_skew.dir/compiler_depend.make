# Empty compiler generated dependencies file for bench_fig06_page_skew.
# This may be replaced when dependencies are built.

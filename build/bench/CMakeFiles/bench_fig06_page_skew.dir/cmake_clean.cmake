file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_page_skew.dir/bench_fig06_page_skew.cc.o"
  "CMakeFiles/bench_fig06_page_skew.dir/bench_fig06_page_skew.cc.o.d"
  "bench_fig06_page_skew"
  "bench_fig06_page_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_page_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

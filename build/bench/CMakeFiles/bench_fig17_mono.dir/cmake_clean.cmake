file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_mono.dir/bench_fig17_mono.cc.o"
  "CMakeFiles/bench_fig17_mono.dir/bench_fig17_mono.cc.o.d"
  "bench_fig17_mono"
  "bench_fig17_mono.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_mono.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig17_mono.
# This may be replaced when dependencies are built.

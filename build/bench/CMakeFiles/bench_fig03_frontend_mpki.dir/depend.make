# Empty dependencies file for bench_fig03_frontend_mpki.
# This may be replaced when dependencies are built.

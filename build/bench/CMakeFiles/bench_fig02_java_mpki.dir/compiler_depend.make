# Empty compiler generated dependencies file for bench_fig02_java_mpki.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/prefetcher_shootout.dir/prefetcher_shootout.cpp.o"
  "CMakeFiles/prefetcher_shootout.dir/prefetcher_shootout.cpp.o.d"
  "prefetcher_shootout"
  "prefetcher_shootout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefetcher_shootout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

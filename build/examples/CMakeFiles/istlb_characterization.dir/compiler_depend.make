# Empty compiler generated dependencies file for istlb_characterization.
# This may be replaced when dependencies are built.

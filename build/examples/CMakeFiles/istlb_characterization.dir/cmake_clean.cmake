file(REMOVE_RECURSE
  "CMakeFiles/istlb_characterization.dir/istlb_characterization.cpp.o"
  "CMakeFiles/istlb_characterization.dir/istlb_characterization.cpp.o.d"
  "istlb_characterization"
  "istlb_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/istlb_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/smt_colocation.dir/smt_colocation.cpp.o"
  "CMakeFiles/smt_colocation.dir/smt_colocation.cpp.o.d"
  "smt_colocation"
  "smt_colocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smt_colocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for smt_colocation.
# This may be replaced when dependencies are built.

/**
 * @file
 * Command-line simulator driver.
 *
 * The ChampSim-style front end for the library: pick a workload, a
 * prefetcher and any configuration overrides, run, and get the full
 * result record (optionally with the component statistics tree and
 * the miss-stream characterisation).
 *
 * Examples:
 *   morrigan_sim --workload qmm_07 --prefetcher morrigan
 *   morrigan_sim --workload java:cassandra --prefetcher mp \
 *                --instructions 10000000
 *   morrigan_sim --workload qmm_00 --smt-with qmm_01 \
 *                --prefetcher morrigan --smt-scaled
 *   morrigan_sim --workload qmm_03 --prefetcher morrigan \
 *                --pt-depth 5 --stats --miss-stream
 */

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "common/snapshot.hh"

#include "check/invariants.hh"
#include "common/build_info.hh"
#include "common/fault_fs.hh"
#include "common/json.hh"
#include "common/logging.hh"
#include "common/telemetry.hh"
#include "core/morrigan.hh"
#include "core/prefetcher_registry.hh"
#include "sim/experiment.hh"
#include "sim/run_pool.hh"
#include "sim/simulator.hh"
#include "workload/workload_factory.hh"

using namespace morrigan;

namespace
{

void
usage()
{
    std::printf(
        "morrigan_sim -- instruction TLB prefetching simulator\n"
        "\n"
        "  --workload NAME       qmm_NN, spec_NN, or java:NAME\n"
        "  --smt-with NAME       colocate a second workload (SMT)\n"
        "  --prefetcher SPEC     none, a registered prefetcher, or\n"
        "                        a 'a+b' hybrid composition\n"
        "  --smt-scaled          double Morrigan's tables (SMT)\n"
        "  --warmup N            warmup instructions "
        "(default 1000000)\n"
        "  --instructions N      measured instructions "
        "(default 4000000)\n"
        "  --pt-depth N          page table depth 4|5\n"
        "  --asap                enable ASAP walk acceleration\n"
        "  --perfect-istlb       idealised instruction STLB\n"
        "  --p2tlb               prefetch into the STLB (no PB)\n"
        "  --icache NAME         none|next-line|fnl-mma\n"
        "  --no-icache-xlat      free translations for I-cache "
        "prefetches\n"
        "  --prefetch-on-hits    engage prefetcher on STLB hits too\n"
        "  --ctx-switch N        context switch every N "
        "instructions\n"
        "  --pb-entries N        prefetch buffer capacity\n"
        "  --check               cross-check every demand "
        "translation against the golden reference model "
        "(MORRIGAN_CHECK=1 does the same)\n"
        "  --check-level N       check level 1|2 (2 adds heavyweight "
        "structural invariants; implies --check)\n"
        "  --inject N            corrupt every Nth instruction "
        "demand walk (checker validation)\n"
        "  --stats               dump the component statistics tree\n"
        "  --stats-json FILE     write the versioned JSON stats "
        "document\n"
        "  --trace FILE          JSONL prefetch lifecycle event log\n"
        "  --interval N          sample metrics every N measured "
        "instructions\n"
        "  --interval-out FILE   stream interval epochs to FILE\n"
        "  --interval-csv        CSV instead of JSONL for "
        "--interval-out\n"
        "  --miss-stream         print the miss-stream "
        "characterisation\n"
        "  --baseline            also run the no-prefetch baseline "
        "and report speedup\n"
        "  --jobs N              parallel worker count (default: "
        "MORRIGAN_JOBS, then hardware)\n"
        "  --sweep               run the whole QMM suite (baseline "
        "+ prefetcher) and report speedups\n"
        "  --isolate             sandbox every batch job in its own "
        "process (contains crashes/OOM; MORRIGAN_ISOLATE=1)\n"
        "  --job-timeout SECS    per-job watchdog deadline (default "
        "derived from the instruction budget; "
        "MORRIGAN_JOB_TIMEOUT)\n"
        "  --retries N           retry failed jobs (and timed-out "
        "ones under --isolate) up to N times with backoff "
        "(default 1; MORRIGAN_JOB_RETRIES)\n"
        "  --journal FILE        append per-job outcomes to FILE "
        "and resume completed jobs from it (MORRIGAN_JOURNAL)\n"
        "  --checkpoint FILE     autosave a snapshot to FILE and, "
        "when FILE already holds a valid snapshot, resume the run "
        "from it (single-run mode)\n"
        "  --checkpoint-every N  snapshot autosave interval in "
        "instructions (default 1000000; MORRIGAN_CHECKPOINT_EVERY)\n"
        "  --checkpoint-dir DIR  batch mode: per-job checkpoints in "
        "DIR so killed/timed-out jobs resume on retry "
        "(MORRIGAN_CHECKPOINT_DIR)\n"
        "  --warmup-cache DIR    reuse warmed-up snapshots keyed by "
        "(workload, prefetcher, system) across batch jobs "
        "(MORRIGAN_WARMUP_CACHE)\n"
        "  --telemetry           collect self-profiling phase "
        "timers/counters; adds a telemetry section (with "
        "instrs_per_sec) to --stats-json\n"
        "  --trace-events FILE   record every span and export Chrome "
        "trace-event JSON to FILE at exit (chrome://tracing, "
        "Perfetto); implies --telemetry\n"
        "  --progress MS         periodic campaign progress line on "
        "stderr, at most every MS ms (batch modes; "
        "MORRIGAN_PROGRESS_MS)\n"
        "  --version             print build identity (git SHA, "
        "compiler, flags) and exit\n"
        "\n"
        "registered prefetchers (compose with '+'):\n");
    for (const PrefetcherPlugin &p :
         PrefetcherRegistry::global().plugins()) {
        std::printf("  %-14s %-18s %s\n", p.name.c_str(),
                    p.displayName.c_str(), p.description.c_str());
    }
}

/**
 * Validated numeric option parsing: fatal()s on junk, trailing
 * garbage, or out-of-range values instead of silently using 0 the
 * way bare atoi would.
 */
std::uint64_t
parseU64(const std::string &flag, const char *s,
         std::uint64_t min_value, std::uint64_t max_value)
{
    if (!s || *s == '\0' || *s == '-')
        fatal("%s: '%s' is not a non-negative integer",
              flag.c_str(), s ? s : "");
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(s, &end, 10);
    if (*end != '\0')
        fatal("%s: trailing junk in '%s'", flag.c_str(), s);
    if (errno == ERANGE || v < min_value || v > max_value)
        fatal("%s: %s out of range [%llu, %llu]", flag.c_str(), s,
              static_cast<unsigned long long>(min_value),
              static_cast<unsigned long long>(max_value));
    return v;
}

void
printResult(const SimResult &r)
{
    std::printf("workload            %s\n", r.workload.c_str());
    std::printf("prefetcher          %s\n", r.prefetcher.c_str());
    std::printf("instructions        %llu\n",
                static_cast<unsigned long long>(r.instructions));
    std::printf("cycles              %.0f\n", r.cycles);
    std::printf("IPC                 %.4f\n", r.ipc);
    std::printf("L1I MPKI            %.2f\n", r.l1iMpki);
    std::printf("I-TLB MPKI          %.2f\n", r.itlbMpki);
    std::printf("iSTLB MPKI          %.2f\n", r.istlbMpki);
    std::printf("dSTLB MPKI          %.2f\n", r.dstlbMpki);
    std::printf("iSTLB cycle share   %.1f%%\n",
                r.istlbCycleFraction * 100.0);
    std::printf("PB hits             %llu (IRIP %llu / SDP %llu / "
                "I$ %llu)\n",
                static_cast<unsigned long long>(r.pbHits),
                static_cast<unsigned long long>(r.pbHitsIrip),
                static_cast<unsigned long long>(r.pbHitsSdp),
                static_cast<unsigned long long>(r.pbHitsICache));
    std::printf("miss coverage       %.1f%%\n", r.coverage * 100.0);
    std::printf("demand walks        %llu (instr %llu)\n",
                static_cast<unsigned long long>(r.demandWalks),
                static_cast<unsigned long long>(r.demandWalksInstr));
    std::printf("demand walk refs    %llu (instr %llu)\n",
                static_cast<unsigned long long>(r.demandWalkRefs),
                static_cast<unsigned long long>(
                    r.demandWalkRefsInstr));
    std::printf("prefetch walks      %llu (refs %llu)\n",
                static_cast<unsigned long long>(r.prefetchWalks),
                static_cast<unsigned long long>(r.prefetchWalkRefs));
    std::printf("walk latency        instr %.0f / data %.0f "
                "cycles\n",
                r.meanDemandWalkLatencyInstr,
                r.meanDemandWalkLatencyData);
    if (r.contextSwitches > 0)
        std::printf("context switches    %llu\n",
                    static_cast<unsigned long long>(
                        r.contextSwitches));
}

/** Key run-level results as a JSON object. */
void
writeResultJson(std::ostream &os, const SimResult &r)
{
    json::Writer w(os);
    w.beginObject();
    w.kv("instructions", r.instructions);
    w.kv("cycles", r.cycles);
    w.kv("ipc", r.ipc);
    w.kv("l1i_mpki", r.l1iMpki);
    w.kv("itlb_mpki", r.itlbMpki);
    w.kv("istlb_mpki", r.istlbMpki);
    w.kv("dstlb_mpki", r.dstlbMpki);
    w.kv("istlb_misses", r.istlbMisses);
    w.kv("pb_hits", r.pbHits);
    w.kv("pb_hits_irip", r.pbHitsIrip);
    w.kv("pb_hits_sdp", r.pbHitsSdp);
    w.kv("pb_hits_icache", r.pbHitsICache);
    w.kv("coverage", r.coverage);
    w.kv("istlb_cycle_fraction", r.istlbCycleFraction);
    w.kv("demand_walks", r.demandWalks);
    w.kv("demand_walks_instr", r.demandWalksInstr);
    w.kv("demand_walk_refs", r.demandWalkRefs);
    w.kv("prefetch_walks", r.prefetchWalks);
    w.kv("prefetch_walk_refs", r.prefetchWalkRefs);
    w.kv("mean_demand_walk_latency_instr",
         r.meanDemandWalkLatencyInstr);
    w.kv("context_switches", r.contextSwitches);
    w.endObject();
}

/**
 * The full --stats-json document: schema header, run identity, key
 * results, the whole StatGroup tree, and -- when enabled -- the
 * prefetch lifecycle summary and the interval epoch ring.
 */
void
writeStatsJsonDocument(std::ostream &os, Simulator &sim,
                       const SimResult &r, double run_seconds)
{
    json::Writer w(os);
    w.beginObject();
    w.kv("schema", "morrigan-stats");
    w.kv("version", json::statsSchemaVersion);
    // Deterministic per binary, so safe in byte-compared documents.
    w.key("build_info").rawValue([](std::ostream &o) {
        json::Writer bw(o);
        writeBuildInfoJson(bw);
    });
    w.kv("workload", r.workload);
    w.kv("prefetcher", r.prefetcher);
    w.key("result").rawValue(
        [&](std::ostream &o) { writeResultJson(o, r); });
    w.key("stats").rawValue(
        [&](std::ostream &o) { sim.rootStats().writeJson(o); });
    if (sim.tracer())
        w.key("trace_summary").rawValue([&](std::ostream &o) {
            sim.tracer()->writeSummaryJson(o);
        });
    if (sim.intervalSampler())
        w.key("intervals").rawValue([&](std::ostream &o) {
            sim.intervalSampler()->writeRingJson(o);
        });
    // Wall-clock figures are nondeterministic, so this section only
    // appears when the user armed --telemetry: byte-comparing
    // documents (the CI resume-identity check) stays valid by
    // default.
    if (telemetry::enabled())
        w.key("telemetry").rawValue([&](std::ostream &o) {
            json::Writer tw(o);
            tw.beginObject();
            tw.kv("run_seconds", run_seconds);
            tw.kv("instrs_per_sec",
                  run_seconds > 0.0
                      ? static_cast<double>(r.instructions) /
                            run_seconds
                      : 0.0);
            tw.key("report").rawValue([](std::ostream &ro) {
                json::Writer rw(ro);
                telemetry::writeReportJson(rw,
                                           telemetry::snapshot());
            });
            tw.endObject();
        });
    // Batch jobs (--baseline) that failed permanently: degraded
    // campaigns must say what is missing.
    if (FailureManifest::global().size() > 0)
        w.key("failures").rawValue([&](std::ostream &o) {
            FailureManifest::global().writeJson(o);
        });
    w.endObject();
    os << '\n';
}

/** Export the span buffer as Chrome trace-event JSON (all exits). */
void
exportTraceEvents(const std::string &path)
{
    if (path.empty())
        return;
    std::string err;
    if (!telemetry::writeChromeTrace(path, &err))
        warn("cannot write --trace-events file: %s", err.c_str());
    else
        std::fprintf(stderr,
                     "trace events written to %s (load in "
                     "chrome://tracing or Perfetto)\n",
                     path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    // Die on a MORRIGAN_FAULT_FS typo before any work happens, not
    // at the first journal/snapshot write (or never).
    faultfs::initFromEnv();
    std::string workload_name = "qmm_00";
    std::string smt_name;
    std::string prefetcher_name = "morrigan";
    std::string icache_name = "next-line";
    SimConfig cfg;
    cfg.warmupInstructions = 1'000'000;
    cfg.simInstructions = 4'000'000;
    bool smt_scaled = false;
    bool dump_stats = false;
    bool miss_stream = false;
    bool with_baseline = false;
    bool sweep = false;
    std::string stats_json_path;
    std::string trace_path;
    std::string interval_out_path;
    std::uint64_t interval = 0;
    bool interval_csv = false;
    std::string checkpoint_path;
    bool telemetry_on = false;
    std::string trace_events_path;
    std::uint64_t checkpoint_every = 1'000'000;
    if (const char *e = std::getenv("MORRIGAN_CHECKPOINT_EVERY"))
        checkpoint_every = parseU64("MORRIGAN_CHECKPOINT_EVERY", e, 1,
                                    std::uint64_t{1} << 40);
    // Campaign resilience policy: env defaults, overridden by the
    // flags below, installed process-wide for every batch.
    SupervisorOptions sup = Supervisor::defaultOptions();

    // MORRIGAN_CHECK=1 is the environment spelling of --check. The
    // env is resolved here, at the CLI boundary, so SimConfig (and
    // with it every experiment cache key) stays a pure function of
    // the flags.
    int check_level = 0;
    if (const char *e = std::getenv("MORRIGAN_CHECK"))
        if (*e != '\0' && std::string(e) != "0")
            check_level = 1;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--version") {
            std::printf("%s\n", buildInfoLine().c_str());
            return 0;
        } else if (arg == "--telemetry") {
            telemetry_on = true;
        } else if (arg == "--trace-events") {
            trace_events_path = next();
            telemetry_on = true;
        } else if (arg == "--progress") {
            sup.progressEveryMs =
                parseU64(arg, next(), 1, 3'600'000);
        } else if (arg == "--workload") {
            workload_name = next();
        } else if (arg == "--smt-with") {
            smt_name = next();
        } else if (arg == "--prefetcher") {
            prefetcher_name = next();
        } else if (arg == "--smt-scaled") {
            smt_scaled = true;
        } else if (arg == "--warmup") {
            cfg.warmupInstructions =
                parseU64(arg, next(), 0, std::uint64_t{1} << 40);
        } else if (arg == "--instructions") {
            cfg.simInstructions =
                parseU64(arg, next(), 1, std::uint64_t{1} << 40);
        } else if (arg == "--pt-depth") {
            cfg.pageTableDepth =
                static_cast<unsigned>(parseU64(arg, next(), 4, 5));
        } else if (arg == "--asap") {
            cfg.walker.asap = true;
        } else if (arg == "--perfect-istlb") {
            cfg.perfectIstlb = true;
        } else if (arg == "--p2tlb") {
            cfg.prefetchIntoStlb = true;
        } else if (arg == "--icache") {
            icache_name = next();
        } else if (arg == "--no-icache-xlat") {
            cfg.icacheTranslationCost = false;
        } else if (arg == "--prefetch-on-hits") {
            cfg.prefetchOnStlbHits = true;
        } else if (arg == "--ctx-switch") {
            cfg.contextSwitchInterval =
                parseU64(arg, next(), 0, std::uint64_t{1} << 40);
        } else if (arg == "--pb-entries") {
            cfg.pbEntries = static_cast<std::uint32_t>(
                parseU64(arg, next(), 1, 1u << 20));
        } else if (arg == "--check") {
            check_level = std::max(check_level, 1);
        } else if (arg == "--check-level") {
            check_level = static_cast<int>(
                parseU64(arg, next(), 1, 2));
        } else if (arg == "--inject") {
            cfg.injectWalkerBugPeriod =
                parseU64(arg, next(), 1, std::uint64_t{1} << 40);
        } else if (arg == "--stats") {
            dump_stats = true;
        } else if (arg == "--stats-json") {
            stats_json_path = next();
        } else if (arg == "--trace") {
            trace_path = next();
        } else if (arg == "--interval") {
            interval =
                parseU64(arg, next(), 1, std::uint64_t{1} << 40);
        } else if (arg == "--interval-out") {
            interval_out_path = next();
        } else if (arg == "--interval-csv") {
            interval_csv = true;
        } else if (arg == "--miss-stream") {
            miss_stream = true;
            cfg.collectMissStream = true;
        } else if (arg == "--baseline") {
            with_baseline = true;
        } else if (arg == "--jobs") {
            RunPool::setDefaultJobs(parseJobsValue("--jobs", next()));
        } else if (arg == "--sweep") {
            sweep = true;
        } else if (arg == "--isolate") {
            sup.isolate = true;
        } else if (arg == "--job-timeout") {
            sup.jobTimeoutMs =
                parseU64(arg, next(), 1, 86'400) * 1000;
        } else if (arg == "--retries") {
            sup.maxAttempts = 1 + static_cast<unsigned>(
                                      parseU64(arg, next(), 0, 100));
        } else if (arg == "--journal") {
            sup.journalPath = next();
        } else if (arg == "--checkpoint") {
            checkpoint_path = next();
        } else if (arg == "--checkpoint-every") {
            checkpoint_every =
                parseU64(arg, next(), 1, std::uint64_t{1} << 40);
        } else if (arg == "--checkpoint-dir") {
            sup.checkpointDir = next();
        } else if (arg == "--warmup-cache") {
            RunPool::setWarmupImageDir(next());
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            usage();
            return 1;
        }
    }

    sup.checkpointEveryInstructions = checkpoint_every;
    Supervisor::setDefaultOptions(sup);

    if (telemetry_on)
        telemetry::setEnabled(true);
    if (!trace_events_path.empty())
        telemetry::setTracing(true);

    cfg.checkLevel = check_level;
    if (check_level > 0) {
        // Arm the structural invariant hooks to the same level
        // unless the user pinned MORRIGAN_CHECK_LEVEL themselves.
        // The env is read lazily on first use, which is after this.
        setenv("MORRIGAN_CHECK_LEVEL",
               std::to_string(check_level).c_str(),
               /*overwrite=*/0);
    }

    if (icache_name == "none")
        cfg.icachePref = ICachePrefKind::None;
    else if (icache_name == "next-line")
        cfg.icachePref = ICachePrefKind::NextLine;
    else if (icache_name == "fnl-mma")
        cfg.icachePref = ICachePrefKind::FnlMma;
    else {
        std::fprintf(stderr, "unknown I-cache prefetcher %s\n",
                     icache_name.c_str());
        return 1;
    }

    // --sweep: the whole QMM suite, baseline + chosen prefetcher,
    // as one parallel batch through the shared pool and result
    // cache. Per-run observability flags don't apply here.
    if (sweep) {
        std::string spec_err = checkPrefetcherSpec(prefetcher_name);
        if (!spec_err.empty()) {
            std::fprintf(stderr, "%s\n", spec_err.c_str());
            return 1;
        }
        const std::string &kind = prefetcher_name;
        SimConfig sweep_cfg = cfg;
        sweep_cfg.collectMissStream = false;

        std::vector<ExperimentJob> jobs;
        for (unsigned i = 0; i < numQmmWorkloads; ++i)
            jobs.push_back(ExperimentJob::of(
                sweep_cfg, "none",
                qmmWorkloadParams(i)));
        for (unsigned i = 0; i < numQmmWorkloads; ++i) {
            if (kind == "morrigan" && smt_scaled) {
                ExperimentJob job = ExperimentJob::with(
                    sweep_cfg,
                    [] {
                        return std::make_unique<MorriganPrefetcher>(
                            MorriganParams{}.smtScaled());
                    },
                    qmmWorkloadParams(i));
                // Factory jobs are uncacheable; give them a stable
                // tag so --journal can resume them too.
                job.journalTag = csprintf(
                    "sweep:smt-scaled:%s:warmup=%llu:instr=%llu",
                    qmmWorkloadParams(i).name.c_str(),
                    static_cast<unsigned long long>(
                        sweep_cfg.warmupInstructions),
                    static_cast<unsigned long long>(
                        sweep_cfg.simInstructions));
                jobs.push_back(std::move(job));
            } else {
                jobs.push_back(ExperimentJob::of(
                    sweep_cfg, kind, qmmWorkloadParams(i)));
            }
        }
        std::vector<RunOutcome> outcomes = runBatchOutcomes(jobs);
        std::vector<SimResult> base, opt;
        for (unsigned i = 0; i < numQmmWorkloads; ++i)
            base.push_back(outcomes[i].output.result);
        for (unsigned i = 0; i < numQmmWorkloads; ++i)
            opt.push_back(
                outcomes[numQmmWorkloads + i].output.result);

        std::printf("-- QMM suite sweep: %s vs baseline "
                    "(%u workloads, %u jobs) --\n",
                    prefetcher_name.c_str(), numQmmWorkloads,
                    RunPool::global().jobs());
        std::printf("%-10s %10s %10s %9s\n", "workload", "base IPC",
                    "opt IPC", "speedup");
        unsigned failed_rows = 0;
        for (unsigned i = 0; i < numQmmWorkloads; ++i) {
            const RunOutcome &bo = outcomes[i];
            const RunOutcome &oo = outcomes[numQmmWorkloads + i];
            if (!bo.ok() || !oo.ok()) {
                ++failed_rows;
                std::printf("%-10s %10s %10s %9s  (%s)\n",
                            qmmWorkloadParams(i).name.c_str(), "-",
                            "-", "-",
                            runStatusName(!bo.ok() ? bo.status
                                                   : oo.status));
                continue;
            }
            std::printf("%-10s %10.4f %10.4f %8.2f%%\n",
                        base[i].workload.c_str(), base[i].ipc,
                        opt[i].ipc, speedupPct(base[i], opt[i]));
        }
        const double geomean_pct = geomeanSpeedupPct(base, opt);
        std::printf("geomean speedup     %.2f%%\n", geomean_pct);

        // Degraded-mode report: every permanently failed job, with
        // its repro, on stderr; machine-readable in --stats-json.
        const auto failures = FailureManifest::global().entries();
        if (!failures.empty()) {
            std::fprintf(stderr,
                         "%zu job(s) failed permanently:\n",
                         failures.size());
            for (const auto &f : failures)
                std::fprintf(stderr, "  [%s] %s: %s\n    repro: %s\n",
                             runStatusName(f.failure.status),
                             f.label.c_str(),
                             f.failure.what.c_str(),
                             f.failure.repro.c_str());
        }
        if (!stats_json_path.empty()) {
            std::ofstream ofs(stats_json_path);
            if (!ofs)
                fatal("cannot open --stats-json file '%s'",
                      stats_json_path.c_str());
            json::Writer w(ofs);
            w.beginObject();
            w.kv("schema", "morrigan-stats");
            w.kv("version", json::statsSchemaVersion);
            w.key("build_info").rawValue([](std::ostream &o) {
                json::Writer bw(o);
                writeBuildInfoJson(bw);
            });
            w.kv("mode", "sweep");
            w.kv("prefetcher", prefetcher_name);
            w.key("rows").beginArray();
            for (unsigned i = 0; i < numQmmWorkloads; ++i) {
                const RunOutcome &bo = outcomes[i];
                const RunOutcome &oo =
                    outcomes[numQmmWorkloads + i];
                w.beginObject();
                w.kv("workload", qmmWorkloadParams(i).name);
                w.kv("ok", bo.ok() && oo.ok());
                if (bo.ok() && oo.ok()) {
                    w.kv("base_ipc", base[i].ipc);
                    w.kv("opt_ipc", opt[i].ipc);
                    w.kv("speedup_pct",
                         speedupPct(base[i], opt[i]));
                }
                w.endObject();
            }
            w.endArray();
            w.kv("geomean_speedup_pct", geomean_pct);
            if (telemetry::enabled())
                w.key("telemetry").rawValue([](std::ostream &o) {
                    json::Writer tw(o);
                    telemetry::writeReportJson(
                        tw, telemetry::snapshot());
                });
            if (FailureManifest::global().size() > 0)
                w.key("failures").rawValue([&](std::ostream &o) {
                    FailureManifest::global().writeJson(o);
                });
            w.endObject();
            ofs << '\n';
        }

        exportTraceEvents(trace_events_path);

        if (check_level > 0) {
            std::uint64_t checked = 0, mismatched = 0;
            for (const RunOutcome &o : outcomes) {
                if (!o.ok())
                    continue;
                const SimResult &sr = o.output.result;
                checked += sr.checkedTranslations;
                mismatched += sr.checkMismatches;
                if (!sr.checkReport.empty())
                    std::fprintf(stderr, "[%s] %s",
                                 sr.workload.c_str(),
                                 sr.checkReport.c_str());
            }
            std::printf("diff-check          %llu translations, "
                        "%llu mismatches\n",
                        static_cast<unsigned long long>(checked),
                        static_cast<unsigned long long>(mismatched));
            if (mismatched > 0 ||
                morrigan::check::invariantViolations() > 0)
                return 1;
        }
        return failed_rows > 0 ? 2 : 0;
    }

    auto wl = parseWorkloadName(workload_name);
    if (!wl) {
        std::fprintf(stderr, "unknown workload %s\n",
                     workload_name.c_str());
        return 1;
    }

    // Construct the prefetcher: Morrigan variants honour
    // --smt-scaled; everything else comes from the registry.
    std::unique_ptr<TlbPrefetcher> prefetcher;
    std::string spec_err = checkPrefetcherSpec(prefetcher_name);
    if (!spec_err.empty()) {
        std::fprintf(stderr, "%s\n", spec_err.c_str());
        return 1;
    }
    const std::string &kind = prefetcher_name;
    if (kind == "morrigan" && smt_scaled)
        prefetcher = std::make_unique<MorriganPrefetcher>(
            MorriganParams{}.smtScaled());
    else
        prefetcher = makePrefetcher(kind);

    ServerWorkload trace(*wl);
    Simulator sim(cfg);
    sim.attachWorkload(&trace, 0);

    std::unique_ptr<ServerWorkload> smt_trace;
    if (!smt_name.empty()) {
        auto wl2 = parseWorkloadName(smt_name);
        if (!wl2) {
            std::fprintf(stderr, "unknown workload %s\n",
                         smt_name.c_str());
            return 1;
        }
        smt_trace = std::make_unique<ServerWorkload>(*wl2);
        sim.attachWorkload(smt_trace.get(), 1);
    }
    if (prefetcher)
        sim.attachPrefetcher(prefetcher.get());

    // Observability wiring: lifecycle tracing, interval sampling and
    // the JSON stats document are all opt-in and independent, except
    // that --interval implies the tracer (for per-component counts).
    std::ofstream trace_ofs;
    if (!trace_path.empty()) {
        trace_ofs.open(trace_path);
        if (!trace_ofs)
            fatal("cannot open --trace file '%s'",
                  trace_path.c_str());
        sim.enableTracer(&trace_ofs);
    } else if (!stats_json_path.empty() || interval > 0) {
        sim.enableTracer();
    }
    std::ofstream interval_ofs;
    if (interval > 0) {
        IntervalSampler &sampler = sim.enableIntervalSampler(interval);
        if (!interval_out_path.empty()) {
            interval_ofs.open(interval_out_path);
            if (!interval_ofs)
                fatal("cannot open --interval-out file '%s'",
                      interval_out_path.c_str());
            sampler.setSink(&interval_ofs,
                            interval_csv ? IntervalFormat::Csv
                                         : IntervalFormat::Jsonl);
        }
    } else if (!interval_out_path.empty() || interval_csv) {
        fatal("--interval-out/--interval-csv require --interval N");
    }

    // Checkpoint/resume (single-run mode): a valid snapshot at the
    // given path means a previous invocation of this command was
    // interrupted -- resume it; a corrupt, stale or mismatched one
    // is discarded and the run starts over. Either way the run
    // autosaves so the *next* interruption also resumes. The final
    // result is bit-identical to an uninterrupted run.
    if (!checkpoint_path.empty()) {
        if (::access(checkpoint_path.c_str(), F_OK) == 0) {
            try {
                sim.restoreCheckpoint(checkpoint_path);
                std::fprintf(
                    stderr,
                    "resuming from checkpoint %s (%llu / %llu "
                    "instructions)\n",
                    checkpoint_path.c_str(),
                    static_cast<unsigned long long>(
                        sim.progressInstructions()),
                    static_cast<unsigned long long>(
                        sim.totalInstructions()));
            } catch (const SnapshotError &e) {
                warn("discarding checkpoint %s: %s",
                     checkpoint_path.c_str(), e.what());
            }
        }
        sim.setCheckpointing(checkpoint_path, checkpoint_every);
    }

    const std::uint64_t run_begin_ns = telemetry::nowNs();
    SimResult r = sim.run();
    const double run_seconds =
        1e-9 *
        static_cast<double>(telemetry::nowNs() - run_begin_ns);
    printResult(r);
    if (telemetry_on && run_seconds > 0.0)
        std::printf("sim throughput      %.2fM instr/s "
                    "(%.2fs wall)\n",
                    static_cast<double>(r.instructions) /
                        run_seconds / 1e6,
                    run_seconds);

    // The run finished; the checkpoint would only make a rerun of
    // this command replay the tail of *this* run instead of
    // simulating afresh.
    if (!checkpoint_path.empty())
        ::unlink(checkpoint_path.c_str());

    if (!stats_json_path.empty()) {
        std::ofstream ofs(stats_json_path);
        if (!ofs)
            fatal("cannot open --stats-json file '%s'",
                  stats_json_path.c_str());
        writeStatsJsonDocument(ofs, sim, r, run_seconds);
    }

    if (with_baseline) {
        // The baseline is a cacheable job: route it through the
        // pool so repeated invocations (and MORRIGAN_RESULT_CACHE
        // campaigns) reuse it rather than re-simulating.
        SimConfig base_cfg = cfg;
        base_cfg.collectMissStream = false;
        ExperimentJob job =
            smt_name.empty()
                ? ExperimentJob::of(base_cfg, "none",
                                    *wl)
                : ExperimentJob::smtPair(base_cfg,
                                         "none", *wl,
                                         *parseWorkloadName(smt_name));
        SimResult b = runBatch({job}).front();
        std::printf("baseline IPC        %.4f\n", b.ipc);
        std::printf("speedup             %.2f%%\n",
                    speedupPct(b, r));
    }

    if (miss_stream) {
        const MissStreamStats &ms = sim.missStream();
        std::printf("\n-- iSTLB miss stream --\n");
        std::printf("misses              %llu (%zu distinct pages)\n",
                    static_cast<unsigned long long>(
                        ms.totalMisses()),
                    ms.distinctPages());
        std::printf("pages for 90%%       %zu\n",
                    ms.pagesCoveringFraction(0.9));
        std::printf("delta CDF @10       %.1f%%\n",
                    100.0 * ms.deltaCdfAt(10));
        std::printf("top successor prob  %.2f\n",
                    ms.successorProbability(0));
    }

    if (dump_stats) {
        std::printf("\n-- component statistics --\n");
        sim.rootStats().dump(std::cout);
    }

    exportTraceEvents(trace_events_path);

    if (cfg.checkLevel > 0) {
        std::printf("diff-check          %llu translations, "
                    "%llu mismatches\n",
                    static_cast<unsigned long long>(
                        r.checkedTranslations),
                    static_cast<unsigned long long>(
                        r.checkMismatches));
        if (!r.checkReport.empty())
            std::fprintf(stderr, "%s", r.checkReport.c_str());
        std::uint64_t structural =
            morrigan::check::invariantViolations();
        if (structural > 0)
            std::fprintf(stderr,
                         "%llu structural invariant violation(s)\n",
                         static_cast<unsigned long long>(structural));
        if (r.checkMismatches > 0 || structural > 0)
            return 1;
    }
    return 0;
}

#!/usr/bin/env python3
"""Diff a BENCH_*.json artifact against its golden copy.

Bench binaries mirror every printed row into a machine-readable
artifact when MORRIGAN_BENCH_JSON is set (see bench/bench_util.hh).
This tool compares such an artifact against a checked-in golden file
row by row with a relative tolerance, and prints a readable per-row
delta table, so CI can gate on figure regressions without scraping
stdout.

Exit status: 0 when every row matches within tolerance, 1 on a
measured regression (missing row, extra row, unit change,
out-of-tolerance value), 2 when an input is unusable: a file is
missing or unreadable, or the candidate artifact is *degraded* -- it
carries a failure manifest or NaN/null measurements from a campaign
that lost jobs. Degraded artifacts are an infrastructure failure,
not a measured regression, so they get their own exit code and CI
can tell "the figure moved" apart from "the campaign died".

A candidate produced by a campaign that lost jobs (crashes, timeouts
-- see sim/supervisor.hh) carries a "failures" manifest; such an
artifact never passes, and the manifest is echoed so CI logs say
*which* jobs died rather than just "rows disappeared".

Two gating modes:

  - default (figure regression): each row must match the golden
    within --rtol/--atol, both directions.
  - --min-ratio R (throughput): one-sided -- a row passes when
    candidate >= R * golden. Throughput varies with machine load, so
    a symmetric tolerance would be flaky; only a real slowdown below
    the ratio floor fails, and faster-than-golden always passes.

Usage:
  compare_bench_json.py --rtol 0.02 CANDIDATE GOLDEN
  compare_bench_json.py --min-ratio 0.7 CANDIDATE GOLDEN
"""

import argparse
import json
import math
import sys


def load_doc(path):
    """Read and validate one artifact; exit 2 with a clear message
    instead of a traceback when the file is absent or malformed (the
    common CI failure: the bench crashed before writing anything)."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        print(f"error: cannot read artifact {path}: "
              f"{e.strerror or e}\n(did the bench binary run, and "
              f"was MORRIGAN_BENCH_JSON set?)", file=sys.stderr)
        raise SystemExit(2) from None
    except json.JSONDecodeError as e:
        print(f"error: {path} is not valid JSON ({e}); the "
              f"producing bench likely died mid-write",
              file=sys.stderr)
        raise SystemExit(2) from None
    if not isinstance(doc, dict) or doc.get("schema") != "morrigan-bench":
        print(f"error: {path}: not a morrigan-bench artifact",
              file=sys.stderr)
        raise SystemExit(2)
    return doc


def load_rows(doc, path):
    """Flatten a bench artifact into {(section, label): (value, unit)}."""
    rows = {}
    for section in doc.get("sections", []):
        fig = section.get("figure", "?")
        for row in section.get("rows", []):
            key = (fig, row["label"])
            if key in rows:
                raise SystemExit(f"error: {path}: duplicate row {key}")
            # Degraded campaigns emit NaN measurements, which the
            # JSON writer serializes as null; map them back to NaN so
            # within() fails the row instead of float(None) crashing.
            try:
                value = float(row["measured"])
            except (TypeError, ValueError):
                value = math.nan
            rows[key] = (value, row.get("unit", ""))
    if not rows:
        raise SystemExit(f"error: {path}: no rows (empty artifact)")
    return rows


def report_failure_manifest(doc, path):
    """Echo a degraded artifact's failure manifest; returns the
    number of manifest entries (0 for a clean artifact)."""
    manifest = doc.get("failures", [])
    if not manifest:
        return 0
    print(f"{path}: DEGRADED artifact -- {len(manifest)} job(s) "
          f"failed permanently during the producing campaign:")
    for entry in manifest:
        label = entry.get("label", "?")
        status = entry.get("status", "?")
        attempts = entry.get("attempts", "?")
        what = entry.get("what", "")
        print(f"  {label}: {status} after {attempts} attempt(s)"
              f"{': ' + what if what else ''}")
        repro = entry.get("repro", "")
        if repro:
            print(f"    repro: {repro}")
    return len(manifest)


def within(candidate, golden, rtol, atol):
    if math.isnan(candidate) or math.isnan(golden):
        return False
    return abs(candidate - golden) <= max(atol, rtol * abs(golden))


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("candidate", help="freshly produced BENCH_*.json")
    ap.add_argument("golden", help="checked-in golden BENCH_*.json")
    ap.add_argument("--rtol", type=float, default=0.02,
                    help="relative tolerance per row (default 0.02)")
    ap.add_argument("--atol", type=float, default=1e-9,
                    help="absolute floor for near-zero rows")
    ap.add_argument("--min-ratio", type=float, default=None,
                    help="one-sided throughput gate: pass a row when "
                         "candidate >= MIN_RATIO * golden (replaces "
                         "the rtol check; 0.7 is the CI default for "
                         "BENCH_Throughput.json)")
    args = ap.parse_args()

    cand_doc = load_doc(args.candidate)
    gold_doc = load_doc(args.golden)
    cand = load_rows(cand_doc, args.candidate)
    gold = load_rows(gold_doc, args.golden)

    manifest_entries = report_failure_manifest(cand_doc,
                                               args.candidate)
    nan_rows = sum(1 for value, _ in cand.values()
                   if math.isnan(value))
    degraded = manifest_entries > 0 or nan_rows > 0
    failures = manifest_entries
    missing = 0
    width = max(len(label) for _, label in (cand.keys() | gold.keys()))
    if args.min_ratio is not None:
        print(f"comparing {args.candidate} vs {args.golden} "
              f"(min-ratio {args.min_ratio:g}, one-sided)")
    else:
        print(f"comparing {args.candidate} vs {args.golden} "
              f"(rtol {args.rtol:g})")
    print(f"  {'row':<{width}} {'golden':>12} {'candidate':>12} "
          f"{'delta':>10}  verdict")

    for key in sorted(gold.keys() | cand.keys()):
        _, label = key
        if key not in cand:
            print(f"  {label:<{width}} {gold[key][0]:>12.4f} "
                  f"{'missing':>12} {'':>10}  FAIL (row disappeared)")
            failures += 1
            missing += 1
            continue
        if key not in gold:
            print(f"  {label:<{width}} {'missing':>12} "
                  f"{cand[key][0]:>12.4f} {'':>10}  FAIL (new row; "
                  f"regenerate the golden)")
            failures += 1
            continue
        gv, gu = gold[key]
        cv, cu = cand[key]
        if gu != cu:
            print(f"  {label:<{width}} {gv:>12.4f} {cv:>12.4f} "
                  f"{'':>10}  FAIL (unit '{gu}' -> '{cu}')")
            failures += 1
            continue
        delta = cv - gv
        rel = delta / gv if gv else math.inf if delta else 0.0
        if args.min_ratio is not None:
            ratio = (cv / gv) if gv else math.inf
            ok = (not math.isnan(cv) and not math.isnan(gv)
                  and cv >= args.min_ratio * gv)
            verdict = ("ok" if ok else
                       f"FAIL (ratio {ratio:.2f} < "
                       f"{args.min_ratio:g})")
        else:
            ok = within(cv, gv, args.rtol, args.atol)
            verdict = "ok" if ok else f"FAIL (rel {rel:+.2%})"
        print(f"  {label:<{width}} {gv:>12.4f} {cv:>12.4f} "
              f"{delta:>+10.4f}  {verdict}")
        failures += 0 if ok else 1

    if degraded:
        print(f"{args.candidate}: degraded artifact "
              f"({manifest_entries} manifest entr"
              f"{'y' if manifest_entries == 1 else 'ies'}, "
              f"{nan_rows} NaN row(s)) -- not comparable; rerun the "
              f"producing campaign.")
        return 2
    if failures:
        if missing:
            print(f"{missing} golden row(s) missing from the "
                  f"candidate: the producing campaign did not "
                  f"complete (check the failure manifest above and "
                  f"the bench logs).")
        print(f"{failures} problem(s) found. If a value change is "
              f"intentional, regenerate the golden:")
        print(f"  MORRIGAN_BENCH_JSON=bench/golden "
              f"./build/bench/<bench_binary>")
        return 1
    print(f"all {len(gold)} row(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())

/**
 * @file
 * Campaign service daemon (see src/service/campaign_service.hh and
 * DESIGN.md §16).
 *
 * Runs in the foreground; background it with your supervisor of
 * choice. SIGTERM/SIGINT drain gracefully: in-flight jobs finish and
 * are journaled, queued work settles as canceled, new submissions
 * get a retriable `busy`, and the process exits 0.
 *
 * Example:
 *   morrigan-serve --socket /tmp/morrigan.sock \
 *       --journal campaign.journal --checkpoint-dir ckpt --isolate
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/build_info.hh"
#include "common/fault_fs.hh"
#include "common/logging.hh"
#include "common/telemetry.hh"
#include "service/campaign_service.hh"
#include "sim/run_pool.hh"

using namespace morrigan;

namespace
{

CampaignService *activeService = nullptr;

void
onSignal(int)
{
    if (activeService)
        activeService->requestDrain();
}

void
usage()
{
    std::printf(
        "morrigan-serve -- campaign service daemon\n"
        "\n"
        "  --socket PATH         Unix socket to listen on "
        "(required)\n"
        "  --journal FILE        fsync'd campaign journal; makes "
        "resubmission idempotent and restarts lossless\n"
        "  --checkpoint-dir DIR  per-job snapshot checkpoints, so "
        "killed jobs resume mid-run\n"
        "  --checkpoint-every N  autosave interval in instructions "
        "(default 1000000)\n"
        "  --isolate             sandbox every job in its own "
        "process\n"
        "  --jobs N              parallel worker count per campaign\n"
        "  --job-timeout SECS    per-job watchdog deadline (default "
        "derived from the instruction budget)\n"
        "  --retries N           per-job retries with backoff "
        "(default 1)\n"
        "  --max-queue N         queued campaigns before submit "
        "returns busy (default 4)\n"
        "  --spool DIR           interval-epoch spool directory "
        "(default <socket>.spool)\n"
        "  --progress MS         campaign progress lines on stderr\n"
        "  --telemetry           collect self-profiling counters\n"
        "  --version             print build identity and exit\n");
}

std::uint64_t
parseU64(const char *flag, const char *s, std::uint64_t min_value,
         std::uint64_t max_value)
{
    if (!s || *s == '\0' || *s == '-')
        fatal("%s: '%s' is not a non-negative integer", flag,
              s ? s : "");
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(s, &end, 10);
    if (*end != '\0')
        fatal("%s: trailing junk in '%s'", flag, s);
    if (errno == ERANGE || v < min_value || v > max_value)
        fatal("%s: %s out of range [%llu, %llu]", flag, s,
              static_cast<unsigned long long>(min_value),
              static_cast<unsigned long long>(max_value));
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    // Die on a MORRIGAN_FAULT_FS typo before accepting any work,
    // not at the first journal append.
    faultfs::initFromEnv();
    ServiceOptions opt;
    opt.supervisor = Supervisor::defaultOptions();
    bool telemetry_on = false;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("%s needs a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--version") {
            std::printf("%s\n", buildInfoLine().c_str());
            return 0;
        } else if (arg == "--socket") {
            opt.socketPath = next();
        } else if (arg == "--journal") {
            opt.supervisor.journalPath = next();
        } else if (arg == "--checkpoint-dir") {
            opt.supervisor.checkpointDir = next();
        } else if (arg == "--checkpoint-every") {
            opt.supervisor.checkpointEveryInstructions = parseU64(
                "--checkpoint-every", next(), 1,
                std::uint64_t{1} << 40);
        } else if (arg == "--isolate") {
            opt.supervisor.isolate = true;
        } else if (arg == "--jobs") {
            opt.supervisor.jobs =
                parseJobsValue("--jobs", next());
        } else if (arg == "--job-timeout") {
            opt.supervisor.jobTimeoutMs =
                parseU64("--job-timeout", next(), 1, 86'400) * 1000;
        } else if (arg == "--retries") {
            opt.supervisor.maxAttempts =
                1 + static_cast<unsigned>(
                        parseU64("--retries", next(), 0, 100));
        } else if (arg == "--max-queue") {
            opt.maxQueue = static_cast<std::size_t>(
                parseU64("--max-queue", next(), 1, 1024));
        } else if (arg == "--spool") {
            opt.spoolDir = next();
        } else if (arg == "--progress") {
            opt.supervisor.progressEveryMs =
                parseU64("--progress", next(), 1, 3'600'000);
        } else if (arg == "--telemetry") {
            telemetry_on = true;
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            usage();
            return 1;
        }
    }
    if (opt.socketPath.empty()) {
        std::fprintf(stderr, "--socket is required\n");
        usage();
        return 1;
    }
    if (telemetry_on)
        telemetry::setEnabled(true);

    CampaignService service(opt);
    if (!service.start())
        return 1;

    activeService = &service;
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = onSignal;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
    // A client vanishing mid-write must be an EPIPE, not a fatal
    // signal.
    ::signal(SIGPIPE, SIG_IGN);

    std::fprintf(stderr, "morrigan-serve: listening on %s\n",
                 opt.socketPath.c_str());
    int rc = service.serve();
    std::fprintf(stderr, "morrigan-serve: drained, exiting\n");
    return rc;
}

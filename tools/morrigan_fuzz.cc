/**
 * @file
 * Deterministic config/workload fuzz campaign driver.
 *
 * Samples random-but-valid simulator configurations from seeded
 * RNG streams, runs each seed's simulation family through the
 * worker pool under the differential checker, evaluates the
 * metamorphic invariants (see check/fuzz.hh), and exits non-zero if
 * any seed fails. The campaign is fully reproducible: rerunning
 * with the same --seed-base/--seeds/--instructions/--warmup
 * replays exactly the same simulations.
 *
 * Examples:
 *   morrigan-fuzz --seeds 25 --instructions 200000 --check
 *   morrigan-fuzz --seeds 1 --seed-base 17 --check-level 2
 *   morrigan-fuzz --seeds 5 --inject 50      # validate the checker
 */

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "check/fuzz.hh"
#include "check/invariants.hh"
#include "common/logging.hh"
#include "sim/run_pool.hh"

using namespace morrigan;

namespace
{

void
usage()
{
    std::printf(
        "morrigan-fuzz -- differential config/workload fuzzer\n"
        "\n"
        "  --seeds N           seeds to fuzz (default 25)\n"
        "  --seed-base N       first seed (default 1)\n"
        "  --instructions N    measured instructions per run "
        "(default 200000)\n"
        "  --warmup N          warmup instructions per run "
        "(default 50000)\n"
        "  --check             differential checking (always on; "
        "accepted for symmetry with morrigan-sim)\n"
        "  --check-level N     check level 1|2 (default 1; 2 adds "
        "heavyweight structural invariants)\n"
        "  --inject N          corrupt every Nth instruction demand "
        "walk of each base run; seeds then PASS only when the "
        "checker catches the corruption\n"
        "  --artifact-dir DIR  write failing-seed repro artifacts "
        "into DIR\n"
        "  --jobs N            parallel worker count (default: "
        "MORRIGAN_JOBS, then hardware)\n"
        "  --isolate           sandbox every run in its own process; "
        "crashing/hanging seeds are quarantined, not fatal "
        "(MORRIGAN_ISOLATE=1)\n"
        "  --job-timeout SECS  per-run watchdog deadline (default: "
        "derived from the instruction budget)\n"
        "  --journal FILE      campaign journal (JSONL); rerunning "
        "with the same parameters resumes completed runs\n"
        "  --no-m5             skip the checkpoint/restore "
        "bit-identity invariant (M5), saving one extra run per "
        "seed\n"
        "  --no-m6             skip the telemetry on/off "
        "bit-identity invariant (M6), saving two extra runs per "
        "seed\n");
}

std::uint64_t
parseU64(const std::string &flag, const char *s,
         std::uint64_t min_value, std::uint64_t max_value)
{
    if (!s || *s == '\0' || *s == '-')
        fatal("%s: '%s' is not a non-negative integer",
              flag.c_str(), s ? s : "");
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(s, &end, 10);
    if (*end != '\0')
        fatal("%s: trailing junk in '%s'", flag.c_str(), s);
    if (errno == ERANGE || v < min_value || v > max_value)
        fatal("%s: %s out of range [%llu, %llu]", flag.c_str(), s,
              static_cast<unsigned long long>(min_value),
              static_cast<unsigned long long>(max_value));
    return v;
}

} // namespace

int
main(int argc, char **argv)
{
    check::FuzzOptions opt;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n",
                             arg.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--seeds") {
            opt.seeds = parseU64(arg, next(), 1, 1u << 20);
        } else if (arg == "--seed-base") {
            opt.seedBase =
                parseU64(arg, next(), 0, std::uint64_t{1} << 62);
        } else if (arg == "--instructions") {
            opt.instructions =
                parseU64(arg, next(), 1, std::uint64_t{1} << 32);
        } else if (arg == "--warmup") {
            opt.warmupInstructions =
                parseU64(arg, next(), 0, std::uint64_t{1} << 32);
        } else if (arg == "--check") {
            opt.checkLevel = std::max(opt.checkLevel, 1);
        } else if (arg == "--check-level") {
            opt.checkLevel =
                static_cast<int>(parseU64(arg, next(), 1, 2));
        } else if (arg == "--inject") {
            opt.injectPeriod =
                parseU64(arg, next(), 1, std::uint64_t{1} << 40);
        } else if (arg == "--artifact-dir") {
            opt.artifactDir = next();
        } else if (arg == "--jobs") {
            RunPool::setDefaultJobs(parseJobsValue("--jobs", next()));
        } else if (arg == "--isolate") {
            opt.isolate = true;
        } else if (arg == "--job-timeout") {
            opt.jobTimeoutMs =
                parseU64(arg, next(), 1, 86'400) * 1000;
        } else if (arg == "--journal") {
            opt.journalPath = next();
        } else if (arg == "--no-m5") {
            opt.checkpointInvariant = false;
        } else if (arg == "--no-m6") {
            opt.telemetryInvariant = false;
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            usage();
            return 1;
        }
    }

    // Arm the structural invariant hooks at the requested level
    // (unless the user pinned MORRIGAN_CHECK_LEVEL themselves); the
    // env is read lazily on first use, which is after this point.
    setenv("MORRIGAN_CHECK_LEVEL",
           std::to_string(std::max(1, opt.checkLevel)).c_str(),
           /*overwrite=*/0);

    check::FuzzCampaignOutcome out =
        check::runCampaign(opt, &std::cout);
    return out.passed() ? 0 : 1;
}

/**
 * @file
 * Campaign service client (see DESIGN.md §16).
 *
 * Reads experiment job specs (one JSON object per line) from a file
 * or stdin, submits them to a morrigan-serve daemon, and streams the
 * per-job outcomes. Retries are safe by construction: the daemon's
 * journal makes resubmission idempotent, so this client simply
 * reconnects and resubmits after a connection failure, a retriable
 * `busy`, or a drain-canceled batch -- finished jobs replay, only
 * missing ones run.
 *
 * With --out FILE the client writes one deterministic result row per
 * job (index, idempotency key, status, and the full-precision result
 * record), excluding everything that legitimately differs between an
 * interrupted-and-resumed campaign and an uninterrupted one
 * (attempt counts, durations, replay provenance). Two runs of the
 * same batch therefore produce byte-identical files no matter how
 * many times the daemon or its workers were killed in between -- the
 * CI resilience job diffs exactly this.
 *
 * Example:
 *   morrigan-submit --socket /tmp/morrigan.sock \
 *       --jobs-file batch.jsonl --out results.jsonl
 */

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/build_info.hh"
#include "common/io_retry.hh"
#include "common/json.hh"
#include "common/json_reader.hh"
#include "common/logging.hh"

using namespace morrigan;

namespace
{

void
usage()
{
    std::printf(
        "morrigan-submit -- campaign service client\n"
        "\n"
        "  --socket PATH       daemon socket (required)\n"
        "  --jobs-file FILE    JSONL job specs; '-' reads stdin\n"
        "  --id NAME           submission label (default 'batch')\n"
        "  --out FILE          deterministic per-job result rows\n"
        "  --interval-out FILE append streamed interval epochs\n"
        "  --retry-ms N        delay between retries (default 250)\n"
        "  --max-retries N     connect/busy/drain retries "
        "(default 30)\n"
        "  --idle-timeout SECS give up when no event arrives for "
        "this long (default 600)\n"
        "  --status            print daemon status and exit\n"
        "  --drain             ask the daemon to drain and exit\n"
        "  --ping              check liveness and exit\n"
        "  --version           print build identity and exit\n"
        "\n"
        "exit: 0 all jobs ok, 3 some failed, 1 service "
        "unreachable/protocol error\n");
}

std::uint64_t
parseU64(const char *flag, const char *s, std::uint64_t min_value,
         std::uint64_t max_value)
{
    if (!s || *s == '\0' || *s == '-')
        fatal("%s: '%s' is not a non-negative integer", flag,
              s ? s : "");
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(s, &end, 10);
    if (*end != '\0')
        fatal("%s: trailing junk in '%s'", flag, s);
    if (errno == ERANGE || v < min_value || v > max_value)
        fatal("%s: %s out of range [%llu, %llu]", flag, s,
              static_cast<unsigned long long>(min_value),
              static_cast<unsigned long long>(max_value));
    return v;
}

/** Re-emit a parsed JSON value byte-identically: object order and
 * raw number tokens are preserved by the reader, and the string
 * escapes round-trip through writeEscaped(). */
void
writeValue(std::ostream &os, const json::Value &v)
{
    switch (v.type) {
      case json::Value::Type::Null:
        os << "null";
        break;
      case json::Value::Type::Bool:
        os << (v.boolean ? "true" : "false");
        break;
      case json::Value::Type::Number:
        os << v.token;
        break;
      case json::Value::Type::String:
        json::writeEscaped(os, v.token);
        break;
      case json::Value::Type::Array: {
        os << '[';
        for (std::size_t i = 0; i < v.array.size(); ++i) {
            if (i)
                os << ',';
            writeValue(os, v.array[i]);
        }
        os << ']';
        break;
      }
      case json::Value::Type::Object: {
        os << '{';
        for (std::size_t i = 0; i < v.object.size(); ++i) {
            if (i)
                os << ',';
            json::writeEscaped(os, v.object[i].first);
            os << ':';
            writeValue(os, v.object[i].second);
        }
        os << '}';
        break;
      }
    }
}

int
connectTo(const std::string &path)
{
    sockaddr_un addr{};
    if (path.size() >= sizeof(addr.sun_path))
        fatal("socket path '%s' too long", path.c_str());
    int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        return -1;
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size());
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

/** Line-buffered reads with an idle deadline. */
class LineReader
{
  public:
    explicit LineReader(int fd, int idle_timeout_ms)
        : fd_(fd), idleTimeoutMs_(idle_timeout_ms)
    {
    }

    /** @return false on EOF, error or idle timeout. */
    bool
    next(std::string &line)
    {
        for (;;) {
            std::size_t nl = buf_.find('\n');
            if (nl != std::string::npos) {
                line = buf_.substr(0, nl);
                buf_.erase(0, nl + 1);
                return true;
            }
            pollfd pfd{fd_, POLLIN, 0};
            int pr = io::pollRetry(&pfd, 1, idleTimeoutMs_);
            if (pr <= 0)
                return false; // timeout or error
            char chunk[1 << 16];
            ssize_t n = io::readRetry(fd_, chunk, sizeof(chunk));
            if (n <= 0)
                return false; // EOF / error
            buf_.append(chunk, static_cast<std::size_t>(n));
        }
    }

  private:
    int fd_;
    int idleTimeoutMs_;
    std::string buf_;
};

/** One-shot request helper for --ping/--status/--drain. */
int
oneShot(const std::string &socket_path, const std::string &request,
        const std::string &expect_event, int idle_timeout_ms)
{
    int fd = connectTo(socket_path);
    if (fd < 0) {
        std::fprintf(stderr, "cannot connect to %s: %s\n",
                     socket_path.c_str(), std::strerror(errno));
        return 1;
    }
    std::string line = request + "\n";
    if (!io::writeAll(fd, line.data(), line.size())) {
        ::close(fd);
        return 1;
    }
    LineReader reader(fd, idle_timeout_ms);
    std::string event;
    int rc = 1;
    if (reader.next(event)) {
        std::printf("%s\n", event.c_str());
        json::Value doc;
        std::string name;
        if (json::Reader(event).parse(doc) &&
            json::getString(doc, "event", name) &&
            name == expect_event)
            rc = 0;
    }
    ::close(fd);
    return rc;
}

struct JobRow
{
    std::string deterministic; //!< the --out row (byte-stable)
    bool ok = false;
    bool canceled = false;
};

} // namespace

int
main(int argc, char **argv)
{
    std::string socket_path, jobs_file, out_path, interval_out_path;
    std::string id = "batch";
    std::uint64_t retry_ms = 250, max_retries = 30;
    std::uint64_t idle_timeout_s = 600;
    enum class Mode { Submit, Status, Drain, Ping };
    Mode mode = Mode::Submit;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("%s needs a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (arg == "--version") {
            std::printf("%s\n", buildInfoLine().c_str());
            return 0;
        } else if (arg == "--socket") {
            socket_path = next();
        } else if (arg == "--jobs-file") {
            jobs_file = next();
        } else if (arg == "--id") {
            id = next();
        } else if (arg == "--out") {
            out_path = next();
        } else if (arg == "--interval-out") {
            interval_out_path = next();
        } else if (arg == "--retry-ms") {
            retry_ms = parseU64("--retry-ms", next(), 1, 60'000);
        } else if (arg == "--max-retries") {
            max_retries =
                parseU64("--max-retries", next(), 0, 1'000'000);
        } else if (arg == "--idle-timeout") {
            idle_timeout_s =
                parseU64("--idle-timeout", next(), 1, 86'400);
        } else if (arg == "--status") {
            mode = Mode::Status;
        } else if (arg == "--drain") {
            mode = Mode::Drain;
        } else if (arg == "--ping") {
            mode = Mode::Ping;
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            usage();
            return 2;
        }
    }
    if (socket_path.empty()) {
        std::fprintf(stderr, "--socket is required\n");
        return 2;
    }
    const int idle_ms = static_cast<int>(idle_timeout_s * 1000);
    if (mode == Mode::Status)
        return oneShot(socket_path, "{\"cmd\":\"status\"}", "status",
                       idle_ms);
    if (mode == Mode::Drain)
        return oneShot(socket_path, "{\"cmd\":\"drain\"}", "draining",
                       idle_ms);
    if (mode == Mode::Ping)
        return oneShot(socket_path, "{\"cmd\":\"ping\"}", "pong",
                       idle_ms);

    if (jobs_file.empty()) {
        std::fprintf(stderr, "--jobs-file is required\n");
        return 2;
    }

    // Load + validate the job specs; the submit line embeds them
    // verbatim (the daemon re-validates semantically).
    std::vector<std::string> specs;
    {
        std::ifstream file_ifs;
        std::istream *in = &std::cin;
        if (jobs_file != "-") {
            file_ifs.open(jobs_file);
            if (!file_ifs)
                fatal("cannot open --jobs-file '%s'",
                      jobs_file.c_str());
            in = &file_ifs;
        }
        std::string line;
        while (std::getline(*in, line)) {
            if (line.find_first_not_of(" \t\r") == std::string::npos)
                continue;
            json::Value doc;
            if (!json::Reader(line).parse(doc) ||
                doc.type != json::Value::Type::Object)
                fatal("--jobs-file line %zu is not a JSON object",
                      specs.size() + 1);
            specs.push_back(line);
        }
    }
    if (specs.empty())
        fatal("--jobs-file '%s' holds no job specs",
              jobs_file.c_str());

    std::string submit = "{\"cmd\":\"submit\",\"id\":";
    {
        std::ostringstream ss;
        json::writeEscaped(ss, id);
        submit += ss.str();
    }
    submit += ",\"jobs\":[";
    for (std::size_t i = 0; i < specs.size(); ++i) {
        if (i)
            submit += ',';
        submit += specs[i];
    }
    submit += "]}\n";

    std::ofstream interval_ofs;
    if (!interval_out_path.empty()) {
        interval_ofs.open(interval_out_path,
                          std::ios::out | std::ios::app);
        if (!interval_ofs)
            fatal("cannot open --interval-out '%s'",
                  interval_out_path.c_str());
    }

    std::map<std::uint64_t, JobRow> rows;
    std::uint64_t retries = 0;
    bool complete = false;
    auto backoff = [&](const char *why) -> bool {
        if (retries++ >= max_retries) {
            std::fprintf(stderr,
                         "giving up after %llu retries (%s)\n",
                         static_cast<unsigned long long>(
                             max_retries),
                         why);
            return false;
        }
        std::this_thread::sleep_for(
            std::chrono::milliseconds(retry_ms));
        return true;
    };

    while (!complete) {
        int fd = connectTo(socket_path);
        if (fd < 0) {
            if (!backoff("connect failed"))
                return 1;
            continue;
        }
        if (!io::writeAll(fd, submit.data(), submit.size())) {
            ::close(fd);
            if (!backoff("send failed"))
                return 1;
            continue;
        }

        LineReader reader(fd, idle_ms);
        std::string line;
        bool resubmit = false;
        while (!complete && !resubmit) {
            if (!reader.next(line)) {
                // Daemon died or drained away mid-stream; the
                // journal makes resubmission safe.
                if (!backoff("connection lost"))
                    return 1;
                resubmit = true;
                break;
            }
            json::Value ev;
            std::string name;
            if (!json::Reader(line).parse(ev) ||
                !json::getString(ev, "event", name)) {
                std::fprintf(stderr, "malformed event: %s\n",
                             line.c_str());
                return 1;
            }
            if (name == "accepted")
                continue;
            if (name == "busy") {
                if (!backoff("busy"))
                    return 1;
                resubmit = true;
            } else if (name == "error") {
                std::fprintf(stderr, "service error: %s\n",
                             line.c_str());
                return 1;
            } else if (name == "job") {
                std::uint64_t index = 0;
                std::string key, status;
                if (!json::getU64(ev, "index", index) ||
                    !json::getString(ev, "key", key) ||
                    !json::getString(ev, "status", status)) {
                    std::fprintf(stderr, "malformed job event: %s\n",
                                 line.c_str());
                    return 1;
                }
                bool canceled = false;
                json::getBool(ev, "canceled", canceled);
                JobRow row;
                row.ok = status == "ok";
                row.canceled = canceled;
                std::ostringstream ss;
                json::Writer w(ss);
                w.beginObject();
                w.kv("index", index);
                w.kv("key", key);
                w.kv("status", status);
                if (const json::Value *res = ev.find("result"))
                    w.key("result").rawValue(
                        [&](std::ostream &ro) {
                            writeValue(ro, *res);
                        });
                if (!row.ok && !canceled) {
                    std::string what;
                    std::uint64_t sig = 0;
                    json::getString(ev, "error", what);
                    json::getU64(ev, "signal", sig);
                    w.kv("error", what);
                    w.kv("signal", sig);
                }
                w.endObject();
                row.deterministic = ss.str();
                rows[index] = std::move(row);
                std::fprintf(stderr, "job %llu: %s\n",
                             static_cast<unsigned long long>(index),
                             status.c_str());
            } else if (name == "interval") {
                if (interval_ofs) {
                    const json::Value *epoch = ev.find("epoch");
                    if (epoch) {
                        writeValue(interval_ofs, *epoch);
                        interval_ofs << '\n';
                    }
                }
            } else if (name == "done") {
                std::uint64_t canceled = 0;
                json::getU64(ev, "canceled", canceled);
                if (canceled > 0) {
                    // Graceful drain interrupted the batch: the
                    // finished part is journaled, so resubmitting
                    // runs only the canceled remainder (against the
                    // restarted daemon).
                    if (!backoff("batch partially canceled"))
                        return 1;
                    resubmit = true;
                } else {
                    complete = true;
                }
            }
            // Unknown events are ignored for forward compatibility.
        }
        ::close(fd);
    }

    std::uint64_t failed = 0;
    for (std::size_t i = 0; i < specs.size(); ++i) {
        auto it = rows.find(i);
        if (it == rows.end()) {
            std::fprintf(stderr, "missing outcome for job %zu\n", i);
            return 1;
        }
        if (!it->second.ok)
            ++failed;
    }
    if (!out_path.empty()) {
        std::ofstream ofs(out_path,
                          std::ios::out | std::ios::trunc);
        if (!ofs)
            fatal("cannot open --out '%s'", out_path.c_str());
        for (std::size_t i = 0; i < specs.size(); ++i)
            ofs << rows[i].deterministic << '\n';
    }
    std::fprintf(stderr, "%zu job(s), %llu failed\n", specs.size(),
                 static_cast<unsigned long long>(failed));
    return failed > 0 ? 3 : 0;
}

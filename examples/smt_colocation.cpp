/**
 * @file
 * Example: datacenter-style SMT colocation (Section 6.6). Two server
 * workloads share one 2-way SMT core -- all TLBs, caches, PSCs and
 * the page walker are contended -- and Morrigan runs with doubled
 * prediction tables, building per-thread Markov chains in shared
 * tables.
 *
 *   ./build/examples/smt_colocation [workload-a] [workload-b]
 */

#include <cstdio>
#include <cstdlib>

#include "core/morrigan.hh"
#include "sim/experiment.hh"
#include "workload/workload_factory.hh"

using namespace morrigan;

int
main(int argc, char **argv)
{
    unsigned a = 0, b = 1;
    if (argc > 2) {
        a = static_cast<unsigned>(std::atoi(argv[1]));
        b = static_cast<unsigned>(std::atoi(argv[2]));
    }
    if (a >= numQmmWorkloads || b >= numQmmWorkloads || a == b) {
        std::fprintf(stderr,
                     "need two distinct workload indices < %u\n",
                     numQmmWorkloads);
        return 1;
    }

    SimConfig cfg;
    cfg.warmupInstructions = 1'000'000;
    cfg.simInstructions = 4'000'000;
    ServerWorkloadParams wa = qmmWorkloadParams(a);
    ServerWorkloadParams wb = qmmWorkloadParams(b);

    // Solo runs for comparison.
    SimResult solo_a = runWorkload(cfg, PrefetcherKind::None, wa);
    SimResult solo_b = runWorkload(cfg, PrefetcherKind::None, wb);
    std::printf("solo %s: IPC %.3f, iSTLB MPKI %.2f\n",
                wa.name.c_str(), solo_a.ipc, solo_a.istlbMpki);
    std::printf("solo %s: IPC %.3f, iSTLB MPKI %.2f\n",
                wb.name.c_str(), solo_b.ipc, solo_b.istlbMpki);

    // Colocated baseline.
    SimResult pair = runSmtPair(cfg, nullptr, wa, wb);
    std::printf("\ncolocated %s: aggregate IPC %.3f, iSTLB MPKI "
                "%.2f (contention raises the miss rates)\n",
                pair.workload.c_str(), pair.ipc, pair.istlbMpki);

    // Colocated with Morrigan, tables doubled per Section 6.6.
    MorriganParams doubled = MorriganParams{}.smtScaled();
    MorriganPrefetcher pref(doubled);
    SimResult morr = runSmtPair(cfg, &pref, wa, wb);
    std::printf("with Morrigan (2x tables, %.1fKB): IPC %.3f, "
                "coverage %.1f%%, speedup %.2f%%\n",
                pref.storageBits() / 8.0 / 1024.0, morr.ipc,
                morr.coverage * 100.0, speedupPct(pair, morr));

    // And with the un-doubled tables for contrast.
    MorriganPrefetcher plain{MorriganParams{}};
    SimResult morr1 = runSmtPair(cfg, &plain, wa, wb);
    std::printf("with Morrigan (1x tables, %.1fKB): IPC %.3f, "
                "coverage %.1f%%, speedup %.2f%%\n",
                plain.storageBits() / 8.0 / 1024.0, morr1.ipc,
                morr1.coverage * 100.0, speedupPct(pair, morr1));
    return 0;
}

/**
 * @file
 * Example: datacenter-style SMT colocation (Section 6.6). Two server
 * workloads share one 2-way SMT core -- all TLBs, caches, PSCs and
 * the page walker are contended -- and Morrigan runs with doubled
 * prediction tables, building per-thread Markov chains in shared
 * tables.
 *
 *   ./build/examples/smt_colocation [workload-a] [workload-b]
 */

#include <cstdio>
#include <cstdlib>

#include "core/morrigan.hh"
#include "sim/experiment.hh"
#include "workload/workload_factory.hh"

using namespace morrigan;

int
main(int argc, char **argv)
{
    unsigned a = 0, b = 1;
    if (argc > 2) {
        a = static_cast<unsigned>(std::atoi(argv[1]));
        b = static_cast<unsigned>(std::atoi(argv[2]));
    }
    if (a >= numQmmWorkloads || b >= numQmmWorkloads || a == b) {
        std::fprintf(stderr,
                     "need two distinct workload indices < %u\n",
                     numQmmWorkloads);
        return 1;
    }

    SimConfig cfg;
    cfg.warmupInstructions = 1'000'000;
    cfg.simInstructions = 4'000'000;
    ServerWorkloadParams wa = qmmWorkloadParams(a);
    ServerWorkloadParams wb = qmmWorkloadParams(b);

    // Everything in one parallel batch: the two solo runs, the
    // colocated baseline, and the two Morrigan variants (doubled
    // tables per Section 6.6, and un-doubled for contrast).
    MorriganParams doubled = MorriganParams{}.smtScaled();
    std::vector<ExperimentJob> jobs = {
        ExperimentJob::of(cfg, "none", wa),
        ExperimentJob::of(cfg, "none", wb),
        ExperimentJob::smtPair(cfg, "none", wa, wb),
        ExperimentJob::smtPairWith(
            cfg,
            [doubled] {
                return std::make_unique<MorriganPrefetcher>(doubled);
            },
            wa, wb),
        ExperimentJob::smtPairWith(
            cfg,
            [] {
                return std::make_unique<MorriganPrefetcher>(
                    MorriganParams{});
            },
            wa, wb),
    };
    std::vector<SimResult> results = runBatch(jobs);

    const SimResult &solo_a = results[0];
    const SimResult &solo_b = results[1];
    std::printf("solo %s: IPC %.3f, iSTLB MPKI %.2f\n",
                wa.name.c_str(), solo_a.ipc, solo_a.istlbMpki);
    std::printf("solo %s: IPC %.3f, iSTLB MPKI %.2f\n",
                wb.name.c_str(), solo_b.ipc, solo_b.istlbMpki);

    const SimResult &pair = results[2];
    std::printf("\ncolocated %s: aggregate IPC %.3f, iSTLB MPKI "
                "%.2f (contention raises the miss rates)\n",
                pair.workload.c_str(), pair.ipc, pair.istlbMpki);

    MorriganPrefetcher pref(doubled);  // probe for the budget line
    const SimResult &morr = results[3];
    std::printf("with Morrigan (2x tables, %.1fKB): IPC %.3f, "
                "coverage %.1f%%, speedup %.2f%%\n",
                pref.storageBits() / 8.0 / 1024.0, morr.ipc,
                morr.coverage * 100.0, speedupPct(pair, morr));

    MorriganPrefetcher plain{MorriganParams{}};
    const SimResult &morr1 = results[4];
    std::printf("with Morrigan (1x tables, %.1fKB): IPC %.3f, "
                "coverage %.1f%%, speedup %.2f%%\n",
                plain.storageBits() / 8.0 / 1024.0, morr1.ipc,
                morr1.coverage * 100.0, speedupPct(pair, morr1));
    return 0;
}

/**
 * @file
 * Example: extend the library with your own STLB prefetcher.
 *
 * Implements a toy "history window" prefetcher against the public
 * TlbPrefetcher interface and evaluates it against SDP-only Morrigan
 * and full Morrigan. The point of the example is the integration
 * surface: anything implementing TlbPrefetcher plugs into the
 * simulator, the PB credit path, and the experiment helpers.
 *
 *   ./build/examples/custom_prefetcher [workload-index]
 */

#include <cstdio>
#include <cstdlib>
#include <deque>

#include "core/morrigan.hh"
#include "sim/experiment.hh"
#include "workload/workload_factory.hh"

using namespace morrigan;

namespace
{

/**
 * Replays the last N missing pages whenever one of them recurs --
 * a crude "miss window" prefetcher with no tables at all.
 */
class HistoryWindowPrefetcher : public TlbPrefetcher
{
  public:
    explicit HistoryWindowPrefetcher(std::size_t window = 8)
        : window_(window)
    {
    }

    const char *name() const override { return "history-window"; }

    void
    onInstrStlbMiss(Vpn vpn, Addr pc, unsigned tid,
                    std::vector<PrefetchRequest> &out) override
    {
        (void)pc;
        (void)tid;
        // If this page is in the recent window, replay what followed
        // it last time.
        for (std::size_t i = 0; i + 1 < history_.size(); ++i) {
            if (history_[i] == vpn) {
                PrefetchRequest req;
                req.vpn = history_[i + 1];
                req.tag.producer = PrefetchProducer::Other;
                out.push_back(req);
            }
        }
        history_.push_back(vpn);
        if (history_.size() > window_)
            history_.pop_front();
    }

    std::size_t
    storageBits() const override
    {
        return window_ * 36;  // N full VPNs
    }

  private:
    std::size_t window_;
    std::deque<Vpn> history_;
};

} // namespace

int
main(int argc, char **argv)
{
    unsigned index = 0;
    if (argc > 1)
        index = static_cast<unsigned>(std::atoi(argv[1]));
    if (index >= numQmmWorkloads) {
        std::fprintf(stderr, "workload index must be < %u\n",
                     numQmmWorkloads);
        return 1;
    }

    SimConfig cfg;
    cfg.warmupInstructions = 800'000;
    cfg.simInstructions = 3'000'000;
    ServerWorkloadParams wl = qmmWorkloadParams(index);

    // Custom prefetchers ride the batch API through factory jobs:
    // each run constructs its own fresh instance on the worker
    // thread, so the whole comparison executes in parallel.
    MorriganParams sdp_only;
    sdp_only.irip = sdp_only.irip.scaled(0.03);  // degenerate IRIP

    std::vector<ExperimentJob> jobs = {
        ExperimentJob::of(cfg, "none", wl),
        ExperimentJob::with(
            cfg,
            [] {
                return std::make_unique<HistoryWindowPrefetcher>(16);
            },
            wl),
        ExperimentJob::with(
            cfg,
            [sdp_only] {
                return std::make_unique<MorriganPrefetcher>(
                    sdp_only);
            },
            wl),
        ExperimentJob::with(
            cfg,
            [] {
                return std::make_unique<MorriganPrefetcher>(
                    MorriganParams{});
            },
            wl),
    };
    std::vector<SimResult> results = runBatch(jobs);
    const SimResult &base = results[0];
    std::printf("workload %s: baseline IPC %.3f\n\n",
                wl.name.c_str(), base.ipc);
    std::printf("%-18s %9s %10s %10s\n", "prefetcher", "speedup",
                "coverage", "budget");

    // Probe instances just for the name/budget columns.
    HistoryWindowPrefetcher custom(16);
    MorriganPrefetcher small(sdp_only);
    MorriganPrefetcher full{MorriganParams{}};
    const TlbPrefetcher *probes[] = {&custom, &small, &full};
    for (std::size_t k = 0; k < std::size(probes); ++k) {
        const SimResult &r = results[k + 1];
        std::printf("%-18s %8.2f%% %9.1f%% %7.2f KB\n",
                    probes[k]->name(), speedupPct(base, r),
                    r.coverage * 100.0,
                    probes[k]->storageBits() / 8.0 / 1024.0);
    }
    return 0;
}

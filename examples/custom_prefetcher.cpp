/**
 * @file
 * Example: extend the library with your own STLB prefetcher.
 *
 * Implements a toy "history window" prefetcher against the public
 * TlbPrefetcher interface and evaluates it against SDP-only Morrigan
 * and full Morrigan. The point of the example is the integration
 * surface: anything implementing TlbPrefetcher plugs into the
 * simulator, the PB credit path, and the experiment helpers.
 *
 *   ./build/examples/custom_prefetcher [workload-index]
 */

#include <cstdio>
#include <cstdlib>
#include <deque>

#include "core/morrigan.hh"
#include "sim/experiment.hh"
#include "workload/workload_factory.hh"

using namespace morrigan;

namespace
{

/**
 * Replays the last N missing pages whenever one of them recurs --
 * a crude "miss window" prefetcher with no tables at all.
 */
class HistoryWindowPrefetcher : public TlbPrefetcher
{
  public:
    explicit HistoryWindowPrefetcher(std::size_t window = 8)
        : window_(window)
    {
    }

    const char *name() const override { return "history-window"; }

    void
    onInstrStlbMiss(Vpn vpn, Addr pc, unsigned tid,
                    std::vector<PrefetchRequest> &out) override
    {
        (void)pc;
        (void)tid;
        // If this page is in the recent window, replay what followed
        // it last time.
        for (std::size_t i = 0; i + 1 < history_.size(); ++i) {
            if (history_[i] == vpn) {
                PrefetchRequest req;
                req.vpn = history_[i + 1];
                req.tag.producer = PrefetchProducer::Other;
                out.push_back(req);
            }
        }
        history_.push_back(vpn);
        if (history_.size() > window_)
            history_.pop_front();
    }

    std::size_t
    storageBits() const override
    {
        return window_ * 36;  // N full VPNs
    }

  private:
    std::size_t window_;
    std::deque<Vpn> history_;
};

} // namespace

int
main(int argc, char **argv)
{
    unsigned index = 0;
    if (argc > 1)
        index = static_cast<unsigned>(std::atoi(argv[1]));
    if (index >= numQmmWorkloads) {
        std::fprintf(stderr, "workload index must be < %u\n",
                     numQmmWorkloads);
        return 1;
    }

    SimConfig cfg;
    cfg.warmupInstructions = 800'000;
    cfg.simInstructions = 3'000'000;
    ServerWorkloadParams wl = qmmWorkloadParams(index);

    SimResult base = runWorkload(cfg, PrefetcherKind::None, wl);
    std::printf("workload %s: baseline IPC %.3f\n\n",
                wl.name.c_str(), base.ipc);
    std::printf("%-18s %9s %10s %10s\n", "prefetcher", "speedup",
                "coverage", "budget");

    auto report = [&](TlbPrefetcher &p) {
        SimResult r = runWorkloadWith(cfg, &p, wl);
        std::printf("%-18s %8.2f%% %9.1f%% %7.2f KB\n", p.name(),
                    speedupPct(base, r), r.coverage * 100.0,
                    p.storageBits() / 8.0 / 1024.0);
    };

    HistoryWindowPrefetcher custom(16);
    report(custom);

    MorriganParams sdp_only;
    sdp_only.irip = sdp_only.irip.scaled(0.03);  // degenerate IRIP
    MorriganPrefetcher small(sdp_only);
    report(small);

    MorriganPrefetcher full{MorriganParams{}};
    report(full);
    return 0;
}

/**
 * @file
 * Example: compare every STLB prefetcher configuration on a chosen
 * server workload -- a one-workload slice of Figures 9/15/18.
 *
 *   ./build/examples/prefetcher_shootout [workload-index]
 */

#include <cstdio>
#include <cstdlib>

#include "sim/experiment.hh"
#include "workload/workload_factory.hh"

using namespace morrigan;

int
main(int argc, char **argv)
{
    unsigned index = 0;
    if (argc > 1)
        index = static_cast<unsigned>(std::atoi(argv[1]));
    if (index >= numQmmWorkloads) {
        std::fprintf(stderr, "workload index must be < %u\n",
                     numQmmWorkloads);
        return 1;
    }

    SimConfig cfg;
    cfg.warmupInstructions = 1'000'000;
    cfg.simInstructions = 4'000'000;
    ServerWorkloadParams wl = qmmWorkloadParams(index);

    const std::string kinds[] = {
        "sp",    "asp",
        "dp",      "mp",
        "mp-iso",     "morrigan-mono",
        "morrigan",
        "mp-unbounded2",
        "mp-unbounded",
    };

    // One batch for the whole shootout: the baseline, all nine
    // prefetchers and the perfect-iSTLB bound run in parallel.
    std::vector<ExperimentJob> jobs;
    jobs.push_back(ExperimentJob::of(cfg, "none", wl));
    for (const std::string &kind : kinds)
        jobs.push_back(ExperimentJob::of(cfg, kind, wl));
    SimConfig perfect = cfg;
    perfect.perfectIstlb = true;
    jobs.push_back(
        ExperimentJob::of(perfect, "none", wl));

    std::vector<SimResult> results = runBatch(jobs);
    const SimResult &base = results[0];
    std::printf("workload %s: baseline IPC %.3f, iSTLB MPKI %.2f\n\n",
                wl.name.c_str(), base.ipc, base.istlbMpki);
    std::printf("%-22s %9s %10s %12s %12s\n", "prefetcher", "speedup",
                "coverage", "demand refs", "prefetch refs");

    for (std::size_t k = 0; k < std::size(kinds); ++k) {
        const SimResult &r = results[k + 1];
        std::printf("%-22s %8.2f%% %9.1f%% %11.0f%% %12.0f%%\n",
                    prefetcherDisplayName(kinds[k]).c_str(),
                    speedupPct(base, r), r.coverage * 100.0,
                    100.0 * r.demandWalkRefsInstr /
                        std::max<std::uint64_t>(
                            1, base.demandWalkRefsInstr),
                    100.0 * r.prefetchWalkRefs /
                        std::max<std::uint64_t>(
                            1, base.demandWalkRefsInstr));
    }

    std::printf("%-22s %8.2f%%  (upper bound)\n", "Perfect iSTLB",
                speedupPct(base, results.back()));
    return 0;
}

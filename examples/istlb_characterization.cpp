/**
 * @file
 * Example: characterise the iSTLB miss stream of a server workload.
 *
 * Reproduces the Section 3.3 methodology on one workload: run the
 * baseline system, record every instruction STLB miss, and print the
 * delta locality, page-level skew and successor statistics that
 * motivated Morrigan's design (Findings 1-3).
 *
 *   ./build/examples/istlb_characterization [workload-index]
 */

#include <cstdio>
#include <cstdlib>

#include "sim/simulator.hh"
#include "workload/workload_factory.hh"

using namespace morrigan;

int
main(int argc, char **argv)
{
    unsigned index = 0;
    if (argc > 1)
        index = static_cast<unsigned>(std::atoi(argv[1]));
    if (index >= numQmmWorkloads) {
        std::fprintf(stderr, "workload index must be < %u\n",
                     numQmmWorkloads);
        return 1;
    }

    SimConfig cfg;
    cfg.warmupInstructions = 1'000'000;
    cfg.simInstructions = 6'000'000;
    cfg.collectMissStream = true;

    ServerWorkloadParams wl = qmmWorkloadParams(index);
    ServerWorkload trace(wl);
    Simulator sim(cfg);
    sim.attachWorkload(&trace, 0);
    SimResult r = sim.run();
    const MissStreamStats &ms = sim.missStream();

    std::printf("workload %s: %llu iSTLB misses over %llu "
                "instructions (%.2f MPKI)\n",
                wl.name.c_str(),
                static_cast<unsigned long long>(ms.totalMisses()),
                static_cast<unsigned long long>(r.instructions),
                r.istlbMpki);

    std::printf("\nFinding 1 -- spatial locality of consecutive "
                "misses:\n");
    for (std::uint64_t bound : {1ull, 10ull, 100ull, 1000ull}) {
        std::printf("  |delta| <= %-5llu : %5.1f%% of misses\n",
                    static_cast<unsigned long long>(bound),
                    100.0 * ms.deltaCdfAt(bound));
    }

    std::printf("\nFinding 2 -- page-level skew:\n");
    std::printf("  distinct missing pages : %zu\n",
                ms.distinctPages());
    for (double frac : {0.5, 0.75, 0.9}) {
        std::printf("  pages covering %3.0f%%   : %zu\n",
                    frac * 100, ms.pagesCoveringFraction(frac));
    }

    std::printf("\nFinding 3 -- successor stability (top-50 "
                "pages):\n");
    std::printf("  P(most frequent successor)  = %.2f\n",
                ms.successorProbability(0));
    std::printf("  P(2nd most frequent)        = %.2f\n",
                ms.successorProbability(1));
    std::printf("  P(3rd most frequent)        = %.2f\n",
                ms.successorProbability(2));
    std::printf("  P(less-frequent tail)       = %.2f\n",
                ms.successorTailProbability(3));

    std::printf("\nsuccessor fan-out buckets (share of missing "
                "pages):\n");
    std::printf("  1-2: %.2f   3-4: %.2f   5-8: %.2f   >8: %.2f\n",
                ms.successorCountFraction(1, 2),
                ms.successorCountFraction(3, 4),
                ms.successorCountFraction(5, 8),
                ms.successorCountFraction(9, 1u << 30));
    return 0;
}

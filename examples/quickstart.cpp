/**
 * @file
 * Quickstart: simulate one QMM-like server workload without STLB
 * prefetching and with Morrigan, and print the headline numbers --
 * iSTLB MPKI, miss coverage, and speedup.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart [workload-index]
 */

#include <cstdio>
#include <cstdlib>

#include "sim/experiment.hh"
#include "workload/workload_factory.hh"

using namespace morrigan;

int
main(int argc, char **argv)
{
    unsigned index = 0;
    if (argc > 1)
        index = static_cast<unsigned>(std::atoi(argv[1]));
    if (index >= numQmmWorkloads) {
        std::fprintf(stderr, "workload index must be < %u\n",
                     numQmmWorkloads);
        return 1;
    }

    SimConfig cfg;
    cfg.warmupInstructions = 500'000;
    cfg.simInstructions = 2'000'000;

    ServerWorkloadParams wl = qmmWorkloadParams(index);
    std::printf("workload %s: %u code pages, %u hot + %u cold data "
                "pages\n",
                wl.name.c_str(), wl.codePages, wl.dataHotPages,
                wl.dataColdPages);

    // Both runs go out as one parallel batch; results come back in
    // submission order, identical to running them serially.
    std::vector<SimResult> results = runBatch(
        {ExperimentJob::of(cfg, "none", wl),
         ExperimentJob::of(cfg, "morrigan", wl)});
    const SimResult &base = results[0];
    std::printf("baseline    : IPC %.3f  iSTLB MPKI %.2f  "
                "dSTLB MPKI %.2f  iSTLB cycles %.1f%%\n",
                base.ipc, base.istlbMpki, base.dstlbMpki,
                base.istlbCycleFraction * 100.0);
    std::printf("              walk latency: instr %.0f cyc, "
                "data %.0f cyc\n",
                base.meanDemandWalkLatencyInstr,
                base.meanDemandWalkLatencyData);

    const SimResult &morr = results[1];
    std::printf("morrigan    : IPC %.3f  coverage %.1f%%  "
                "PB hits %llu (IRIP %.0f%% / SDP %.0f%%)\n",
                morr.ipc, morr.coverage * 100.0,
                static_cast<unsigned long long>(morr.pbHits),
                morr.pbHits ? 100.0 * morr.pbHitsIrip / morr.pbHits
                            : 0.0,
                morr.pbHits ? 100.0 * morr.pbHitsSdp / morr.pbHits
                            : 0.0);
    std::printf("speedup     : %.2f%%\n", speedupPct(base, morr));
    std::printf("demand walk refs (instr): base %llu -> morrigan "
                "%llu (%.1f%% eliminated)\n",
                static_cast<unsigned long long>(
                    base.demandWalkRefsInstr),
                static_cast<unsigned long long>(
                    morr.demandWalkRefsInstr),
                base.demandWalkRefsInstr
                    ? 100.0 *
                      (1.0 -
                       static_cast<double>(morr.demandWalkRefsInstr) /
                       static_cast<double>(base.demandWalkRefsInstr))
                    : 0.0);
    return 0;
}
